"""Resource-lifetime + cache-coherence analysis (crowdlint v5, stages 2+3).

Stage 2 — **resource lifetimes**.  Per-function facts record every
acquisition site (``open``/``socket``/``HTTPConnection``/executor
constructors assigned to a plain name, ``X.acquire()`` lock statements,
``tracemalloc.start()``, ``TemporaryDirectory``), then track each one
lexically to its release (``close``/``release``/``shutdown``/``cleanup``/
``os.close``/``tracemalloc.stop``).  A ``with`` acquisition is managed and
never recorded; a token that *escapes* (returned, yielded, stored into a
container/attribute, aliased, or passed to another function) transfers
ownership and is skipped — the analysis only judges provably-local
lifetimes, which is what keeps it at zero false positives.  For the rest:

* no release at all → leak on **every** path (CW801; CW802 for locks);
* release present but not inside a ``finally`` → leak on the exception
  path if an intervening unguarded call **may raise** per the
  interprocedural fixpoint of :mod:`repro.devtools.exceptions`, or on an
  early ``return``/``raise`` between acquire and release.

Stage 3 — **cache coherence**, specialized to ``repro.web.cache``.  A
*serving class* is any class whose ``__init__`` stores a
``ResponseCache(...)`` in an attribute; its other ``__init__``-assigned
attributes are the *served pipeline state*.  Every mutation of served
state outside the constructor must be followed (lexically, in the same
method) by an ``invalidate()``/``clear()`` on the cache attribute —
otherwise handlers keep serving stale generations (CW805).  And no
handler-domain code may bypass the cache API by touching its private
internals (``x.cache._entries`` …) — reads must go through
``lookup``/``store``/``stats`` (CW806, using the thread-domain
propagation of :mod:`repro.devtools.threads` to know what is
handler-reachable).

The atomic-persistence protocol (CW804) is checked per function: code
that stages through ``tempfile.mkstemp`` and publishes with
``os.replace``/``rename`` must ``fsync`` before the rename and unlink the
temp file in an ``except``/``finally`` cleanup, the way
``repro.persistence.save_profiles`` does.

Fact extraction is deliberately import-light (``ast`` + stdlib + the
symbolic helpers shared with :mod:`repro.devtools.threads`) so
:mod:`repro.devtools.domains` can call :func:`extract_resource_facts`
without an import cycle; :class:`LifecycleAnalysis` is whole-program
derived data rebuilt on demand, like the thread and exception analyses.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .threads import (
    DOMAIN_HANDLER,
    _attr_chain,
    _call_sym,
    _last_name,
    _scoped_statements,
)

__all__ = ["extract_resource_facts", "LifecycleAnalysis"]

#: Bumped when the resource-fact schema changes (the summary cache and the
#: ruleset fingerprint already invalidate stale entries; belt-and-braces).
RESOURCE_FORMAT = "1"

#: Constructor last-name → resource kind for plain-name assignments.
_CTOR_KINDS: Dict[str, str] = {
    "open": "file",
    "socket": "socket",
    "create_connection": "socket",
    "socketpair": "socket",
    "HTTPConnection": "connection",
    "HTTPSConnection": "connection",
    "ProcessPoolExecutor": "executor",
    "ThreadPoolExecutor": "executor",
    "TemporaryDirectory": "tempdir",
    "NamedTemporaryFile": "file",
}

#: Method names that release each kind.
_RELEASERS: Dict[str, frozenset] = {
    "file": frozenset({"close"}),
    "socket": frozenset({"close", "shutdown"}),
    "connection": frozenset({"close"}),
    "executor": frozenset({"shutdown"}),
    "tempdir": frozenset({"cleanup"}),
    "trace": frozenset(),  # released by tracemalloc.stop(), matched specially
    "lock": frozenset({"release"}),
}

#: Container/attribute mutators that count as serving-state mutations.
_MUTATORS = frozenset(
    {"update", "append", "extend", "add", "insert", "clear", "pop", "popitem",
     "remove", "discard", "setdefault"}
)

#: Cache methods that bump the generation / drop stale entries.
_BUMPERS = frozenset({"invalidate", "clear"})

#: The class whose instances mark a serving class when stored in __init__.
_CACHE_CLASS = "ResponseCache"

Node = Tuple[str, str]  # (module_key, qualname)


# --------------------------------------------------------------------------
# extraction: one module's resource + coherence facts as plain JSON data
# --------------------------------------------------------------------------

def extract_resource_facts(tree: ast.Module) -> Dict[str, object]:
    """One module's resource-lifetime and cache-coherence facts."""
    facts: Dict[str, object] = {
        "format": RESOURCE_FORMAT,
        "functions": {},
        "coherence": _coherence_facts(tree),
    }
    recorder = _ResRecorder(facts["functions"], facts["coherence"])  # type: ignore[arg-type]
    recorder.walk_definitions(tree.body, prefix="")
    return facts


class _ResRecorder:
    """One record per function: acquisitions tracked to their releases."""

    def __init__(self, functions: Dict[str, Dict[str, object]], coherence: Dict[str, object]):
        self.functions = functions
        self.coherence = coherence

    def walk_definitions(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.record_function(stmt, prefix + stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.walk_definitions(stmt.body, prefix + stmt.name + ".")

    def record_function(self, fn: ast.AST, qualname: str) -> None:
        walker = _ResWalker(self, qualname)
        walker.prescan(fn)
        walker.walk(fn.body, walker.new_block(), guarded=False,  # type: ignore[attr-defined]
                    in_finally=False, in_cleanup=False)
        self.functions[qualname] = walker.finish(fn)
        _ReadScanner.scan(fn, qualname, self.coherence["reads"])  # type: ignore[arg-type]


class _ResWalker:
    """Lexical statement walk of one function body collecting lifetime events."""

    def __init__(self, recorder: _ResRecorder, qualname: str):
        self.recorder = recorder
        self.qualname = qualname
        self.acquires: List[Dict[str, object]] = []
        self.releases: List[Dict[str, object]] = []
        self.escapes: Dict[str, List[int]] = {}
        self.raise_lines: List[int] = []
        self.return_lines: List[int] = []
        self.calls: List[Dict[str, object]] = []
        self.cleanup_release: bool = False
        self.atomic: Dict[str, object] = {}
        self.is_generator = False
        self._tokens: Set[str] = set()
        self._blocks = 0

    def new_block(self) -> int:
        self._blocks += 1
        return self._blocks

    # -- pre-pass ----------------------------------------------------------

    def prescan(self, fn: ast.AST) -> None:
        """Candidate tokens, generator-ness, and the atomic-staging shape."""
        for node in _scoped_statements(fn):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.is_generator = True
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = _last_name(node.value.func)
                if (
                    name in _CTOR_KINDS
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    self._tokens.add(node.targets[0].id)
            if isinstance(node, ast.Call):
                # _scoped_statements gives no ordering guarantee, so the
                # atomic-staging shape is collected order-independently.
                name = _last_name(node.func)
                if name == "mkstemp":
                    if node.lineno < int(self.atomic.get("line", 10 ** 9)):
                        self.atomic["line"] = node.lineno
                        self.atomic["col"] = node.col_offset
                elif name in ("replace", "rename"):
                    if node.lineno < int(self.atomic.get("replace", 10 ** 9)):
                        self.atomic["replace"] = node.lineno
                elif name == "fsync":
                    self.atomic["fsync"] = True

    # -- expression scan ---------------------------------------------------

    def _scan_expr(self, expr: Optional[ast.AST], guarded: bool) -> None:
        if expr is None:
            return
        stack: List[Tuple[ast.AST, bool]] = [(expr, False)]
        while stack:
            node, shielded = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Name):
                if (
                    not shielded
                    and isinstance(node.ctx, ast.Load)
                    and node.id in self._tokens
                ):
                    self.escapes.setdefault(node.id, []).append(node.lineno)
                continue
            if isinstance(node, ast.Attribute):
                # receiver position: ``f.read()`` / ``f.name`` is not an escape
                stack.append((node.value, isinstance(node.value, ast.Name)))
                continue
            if isinstance(node, ast.Call):
                sym = _call_sym(node.func)
                if sym is not None:
                    self.calls.append(
                        {"sym": sym, "line": node.lineno, "guarded": guarded}
                    )
                # handing the raw handle to the os layer is not an escape
                shield_args = _last_name(node.func) in ("close", "fsync", "fdopen")
                stack.append((node.func, False))
                for arg in node.args:
                    stack.append((arg, shield_args))
                for keyword in node.keywords:
                    stack.append((keyword.value, False))
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    stack.append((child, False))

    def _scan_statement_exprs(self, stmt: ast.stmt, guarded: bool) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    # -- acquisition / release matching -----------------------------------

    def _lock_token(self, expr: ast.AST) -> Optional[str]:
        chain = _attr_chain(expr)
        if chain is not None and len(chain) <= 3:
            return ".".join(chain)
        return None

    def _record_acquire(
        self, token: str, kind: str, stmt: ast.stmt, block: int
    ) -> None:
        self.acquires.append(
            {
                "token": token,
                "kind": kind,
                "line": stmt.lineno,
                "col": stmt.col_offset,
                "end": getattr(stmt, "end_lineno", stmt.lineno),
                "block": block,
            }
        )

    def _record_release(
        self, token: str, stmt: ast.stmt, block: int, in_finally: bool, in_cleanup: bool
    ) -> None:
        self.releases.append(
            {
                "token": token,
                "line": stmt.lineno,
                "end_line": getattr(stmt, "end_lineno", stmt.lineno),
                "end_col": getattr(stmt, "end_col_offset", 0),
                "block": block,
                "finally": in_finally,
            }
        )
        if in_finally or in_cleanup:
            self.cleanup_release = True

    def _expr_statement(
        self, stmt: ast.Expr, block: int, guarded: bool, in_finally: bool, in_cleanup: bool
    ) -> bool:
        """Handle acquire/release statement shapes; True when consumed."""
        call = stmt.value
        if not isinstance(call, ast.Call):
            return False
        chain = _attr_chain(call.func)
        name = _last_name(call.func)
        if chain == ["tracemalloc", "start"]:
            self._record_acquire("tracemalloc", "trace", stmt, block)
            return True
        if chain == ["tracemalloc", "stop"]:
            self._record_release("tracemalloc", stmt, block, in_finally, in_cleanup)
            return True
        if name == "acquire" and isinstance(call.func, ast.Attribute):
            token = self._lock_token(call.func.value)
            # acquire(blocking=False)/acquire(timeout=...) may not hold the
            # lock at all — only the plain unconditional form is tracked.
            if token is not None and not call.args and not call.keywords:
                self._record_acquire(token, "lock", stmt, block)
                return True
        if name == "release" and isinstance(call.func, ast.Attribute):
            token = self._lock_token(call.func.value)
            if token is not None:
                self._record_release(token, stmt, block, in_finally, in_cleanup)
                return True
        if (
            name in ("close", "shutdown", "cleanup")
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self._tokens
        ):
            self._record_release(call.func.value.id, stmt, block, in_finally, in_cleanup)
            for arg in call.args:  # shutdown(wait=...) args still scan for calls
                self._scan_expr(arg, guarded)
            return True
        if (
            chain == ["os", "close"]
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id in self._tokens
        ):
            self._record_release(call.args[0].id, stmt, block, in_finally, in_cleanup)
            return True
        if name in ("unlink", "remove") and (in_finally or in_cleanup):
            if "line" in self.atomic:
                self.atomic["cleanup"] = True
        return False

    # -- the walk ----------------------------------------------------------

    def walk(
        self,
        stmts: Sequence[ast.stmt],
        block: int,
        guarded: bool,
        in_finally: bool,
        in_cleanup: bool,
    ) -> None:
        for stmt in stmts:
            self._statement(stmt, block, guarded, in_finally, in_cleanup)

    def _statement(
        self,
        stmt: ast.stmt,
        block: int,
        guarded: bool,
        in_finally: bool,
        in_cleanup: bool,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.recorder.record_function(stmt, f"{self.qualname}.{stmt.name}")
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Return):
            self.return_lines.append(stmt.lineno)
            self._scan_expr(stmt.value, guarded)
            return
        if isinstance(stmt, ast.Raise):
            self.raise_lines.append(stmt.lineno)
            self._scan_statement_exprs(stmt, guarded)
            return
        if isinstance(stmt, ast.Try):
            body_guarded = guarded or bool(stmt.handlers) or bool(stmt.finalbody)
            self.walk(stmt.body, self.new_block(), body_guarded, in_finally, in_cleanup)
            for handler in stmt.handlers:
                self.walk(handler.body, self.new_block(), guarded, in_finally, True)
            self.walk(stmt.orelse, self.new_block(), guarded, in_finally, in_cleanup)
            self.walk(stmt.finalbody, self.new_block(), guarded, True, in_cleanup)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, guarded)
            self.walk(stmt.body, self.new_block(), guarded, in_finally, in_cleanup)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, guarded)
            self.walk(stmt.body, self.new_block(), guarded, in_finally, in_cleanup)
            self.walk(stmt.orelse, self.new_block(), guarded, in_finally, in_cleanup)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, guarded)
            self.walk(stmt.body, self.new_block(), guarded, in_finally, in_cleanup)
            self.walk(stmt.orelse, self.new_block(), guarded, in_finally, in_cleanup)
            return
        if isinstance(stmt, ast.Expr):
            if self._expr_statement(stmt, block, guarded, in_finally, in_cleanup):
                return
            self._scan_expr(stmt.value, guarded)
            return
        if isinstance(stmt, ast.Assign):
            if (
                isinstance(stmt.value, ast.Call)
                and _last_name(stmt.value.func) in _CTOR_KINDS
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                kind = _CTOR_KINDS[_last_name(stmt.value.func)]  # type: ignore[index]
                self._record_acquire(stmt.targets[0].id, kind, stmt, block)
                for arg in stmt.value.args:
                    self._scan_expr(arg, guarded)
                for keyword in stmt.value.keywords:
                    self._scan_expr(keyword.value, guarded)
                return
            self._scan_statement_exprs(stmt, guarded)
            return
        self._scan_statement_exprs(stmt, guarded)

    # -- post-processing ---------------------------------------------------

    def finish(self, fn: ast.AST) -> Dict[str, object]:
        record: Dict[str, object] = {
            "line": fn.lineno,  # type: ignore[attr-defined]
            "acquires": [],
        }
        if not self.is_generator:
            for acq in self.acquires:
                record["acquires"].append(self._close_out(acq))  # type: ignore[union-attr]
        if "line" in self.atomic and "replace" in self.atomic:
            record["atomic"] = {
                "line": int(self.atomic["line"]),
                "col": int(self.atomic.get("col", 0)),
                "replace": int(self.atomic["replace"]),
                "fsync": bool(self.atomic.get("fsync")),
                "cleanup": bool(self.atomic.get("cleanup")),
            }
        return record

    def _close_out(self, acq: Dict[str, object]) -> Dict[str, object]:
        token = str(acq["token"])
        line = int(acq["line"])
        release = None
        for rel in self.releases:
            if rel["token"] == token and int(rel["line"]) >= line:
                if release is None or int(rel["line"]) < int(release["line"]):
                    release = rel
        window_end = int(release["line"]) if release else 10 ** 9
        escapes = any(
            line <= esc <= window_end for esc in self.escapes.get(token, [])
        )
        out: Dict[str, object] = {
            "token": token,
            "kind": acq["kind"],
            "line": line,
            "col": int(acq["col"]),
            "released": release is not None,
            "release_line": int(release["line"]) if release else None,
            "protected": bool(release and release["finally"]),
            "escapes": escapes,
            "raise_between": [
                l for l in self.raise_lines if line < l < window_end
            ][:4],
            "return_between": [
                l for l in self.return_lines if line < l < window_end
            ][:4],
            "calls_between": [
                {"sym": c["sym"], "line": c["line"]}
                for c in self.calls
                if not c["guarded"] and line < int(c["line"]) < window_end
            ][:16],
        }
        if (
            acq["kind"] == "lock"
            and release is not None
            and not release["finally"]
            and release["block"] == acq["block"]
            and int(release["line"]) > int(acq["end"])
            and sum(1 for a in self.acquires if a["token"] == token) == 1
            and sum(1 for r in self.releases if r["token"] == token) == 1
        ):
            out["fix"] = {
                "a_line": line,
                "a_col": int(acq["col"]),
                "a_end": int(acq["end"]),
                "r_line": int(release["line"]),
                "r_end_line": int(release["end_line"]),
                "r_end_col": int(release["end_col"]),
                "lock": token,
            }
        return out


# -- coherence facts (module-level class scan) ------------------------------

def _coherence_facts(tree: ast.Module) -> Dict[str, object]:
    facts: Dict[str, object] = {
        "classes": {},
        "mutations": [],
        "reads": [],
        "defines_cache_class": False,
    }
    _scan_coherence_classes(tree.body, "", facts)
    return facts


def _scan_coherence_classes(
    body: Sequence[ast.stmt], prefix: str, facts: Dict[str, object]
) -> None:
    for stmt in body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        path = prefix + stmt.name
        if stmt.name == _CACHE_CLASS:
            facts["defines_cache_class"] = True
        cache_attr, state = _ctor_attrs(stmt)
        if cache_attr is not None:
            facts["classes"][path] = {"cache": cache_attr, "state": sorted(state)}  # type: ignore[index]
            _scan_mutations(stmt, path, cache_attr, state, facts)
        _scan_coherence_classes(stmt.body, path + ".", facts)


def _self_attr_target(expr: ast.AST) -> Optional[str]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _ctor_attrs(cls: ast.ClassDef) -> Tuple[Optional[str], Set[str]]:
    """(cache attribute, other ``self.X = ...`` attrs) from ``__init__``."""
    cache_attr: Optional[str] = None
    state: Set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
            continue
        for node in _scoped_statements(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr_target(target)
                if attr is None:
                    continue
                if (
                    isinstance(node.value, ast.Call)
                    and _last_name(node.value.func) == _CACHE_CLASS
                ):
                    cache_attr = attr
                else:
                    state.add(attr)
    state.discard(cache_attr or "")
    return cache_attr, state


def _scan_mutations(
    cls: ast.ClassDef,
    path: str,
    cache_attr: str,
    state: Set[str],
    facts: Dict[str, object],
) -> None:
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name == "__init__":
            continue
        qualname = f"{path}.{stmt.name}"
        mutations: List[Dict[str, object]] = []
        bumps: List[int] = []
        for node in _scoped_statements(stmt):
            mutated = _mutated_state_attr(node, state)
            if mutated is not None:
                attr, line, col = mutated
                mutations.append(
                    {"class": path, "attr": attr, "func": qualname,
                     "line": line, "col": col}
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _BUMPERS
            ):
                receiver = _self_attr_target(node.func.value)
                if receiver == cache_attr:
                    bumps.append(node.lineno)
        for mutation in mutations:
            mutation["bumped"] = any(b > int(mutation["line"]) for b in bumps)
            facts["mutations"].append(mutation)  # type: ignore[union-attr]


def _mutated_state_attr(
    node: ast.AST, state: Set[str]
) -> Optional[Tuple[str, int, int]]:
    """``self.X = ...`` / ``self.X[k] = ...`` / ``self.X.update(...)`` sites."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            attr = _self_attr_target(target)
            if attr is not None and attr in state:
                return attr, node.lineno, node.col_offset
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
    ):
        attr = _self_attr_target(node.func.value)
        if attr is not None and attr in state:
            return attr, node.lineno, node.col_offset
    return None


class _ReadScanner:
    """Collect ``<recv>.<cache_attr>._private`` bypass reads per function."""

    @staticmethod
    def scan(fn: ast.AST, qualname: str, reads: List[Dict[str, object]]) -> None:
        for node in _scoped_statements(fn):
            if not isinstance(node, ast.Attribute):
                continue
            if not node.attr.startswith("_") or node.attr.startswith("__"):
                continue
            value = node.value
            receiver: Optional[str] = None
            if isinstance(value, ast.Attribute):
                receiver = value.attr
            elif isinstance(value, ast.Name):
                receiver = value.id
            if receiver is None or receiver == "self":
                continue
            reads.append(
                {"func": qualname, "recv": receiver, "attr": node.attr,
                 "line": node.lineno, "col": node.col_offset}
            )


# --------------------------------------------------------------------------
# whole-program analysis: lifetimes judged with exception edges
# --------------------------------------------------------------------------

class LifecycleAnalysis:
    """CW801/802/804/805/806 records from the per-module resource facts.

    Exception edges come from :class:`~repro.devtools.exceptions.\
ExceptionAnalysis` (is the leak path reachable?), handler-domain
    membership from :class:`~repro.devtools.threads.ThreadAnalysis`
    (is the bypass read served concurrently?).
    """

    def __init__(
        self,
        summaries: Dict[str, Dict[str, object]],
        resolver: Callable[[str, str, Sequence[object]], Optional[Tuple[Tuple[str, str], bool]]],
        exceptions: "ExceptionAnalysis",
        threads: "ThreadAnalysis",
    ):
        self.summaries = summaries
        self._resolve = resolver
        self.exceptions = exceptions
        self.threads = threads
        self._records: Dict[str, List[Dict[str, object]]] = {}
        self._cache_attrs: Set[str] = set()
        self._build()

    def _facts(self, module_key: str) -> Dict[str, object]:
        summary = self.summaries.get(module_key) or {}
        facts = summary.get("resources")
        if not isinstance(facts, dict):
            return {"functions": {}, "coherence": {}}
        return facts

    def _build(self) -> None:
        for module_key in sorted(self.summaries):
            coherence = self._facts(module_key).get("coherence") or {}
            for info in coherence.get("classes", {}).values():  # type: ignore[union-attr]
                self._cache_attrs.add(str(info["cache"]))
        for module_key in sorted(self.summaries):
            facts = self._facts(module_key)
            for qualname, record in sorted(facts.get("functions", {}).items()):  # type: ignore[union-attr]
                self._judge_function(module_key, qualname, record)
            self._judge_coherence(module_key, facts.get("coherence") or {})
        for records in self._records.values():
            records.sort(key=lambda r: (r["line"], r["col"], r["rule"]))

    def _emit(self, module_key: str, record: Dict[str, object]) -> None:
        self._records.setdefault(module_key, []).append(record)

    # -- lifetimes ---------------------------------------------------------

    def _raising_call(
        self, module_key: str, qualname: str, calls: Sequence[Dict[str, object]]
    ) -> Optional[Tuple[int, List[str]]]:
        """The first intervening resolved call that may raise, if any."""
        for call in calls:
            target = self.exceptions._resolve_target(module_key, qualname, call["sym"])
            if target is None:
                continue
            raised = self.exceptions.raises_out.get(target)
            if raised:
                return int(call["line"]), sorted(raised)
        return None

    def _judge_function(
        self, module_key: str, qualname: str, record: Dict[str, object]
    ) -> None:
        for acq in record.get("acquires", []):  # type: ignore[union-attr]
            if acq.get("escapes"):
                continue
            rule = "CW802" if acq["kind"] == "lock" else "CW801"
            noun = "lock" if rule == "CW802" else str(acq["kind"])
            token = acq["token"]
            base: Dict[str, object] = {
                "rule": rule,
                "line": int(acq["line"]),
                "col": int(acq["col"]),
                "kind": acq["kind"],
                "token": token,
                "func": qualname,
            }
            if not acq.get("released"):
                base["reason"] = (
                    f"{noun} {token!r} is acquired here and never "
                    f"released on any path"
                )
                self._emit(module_key, base)
                continue
            if acq.get("protected"):
                continue
            release_line = acq.get("release_line")
            returns = acq.get("return_between") or []
            raises = acq.get("raise_between") or []
            raising = self._raising_call(
                module_key, qualname, acq.get("calls_between") or []
            )
            if returns:
                base["reason"] = (
                    f"return at line {returns[0]} skips the release of "
                    f"{token!r} at line {release_line}"
                )
            elif raises:
                base["reason"] = (
                    f"raise at line {raises[0]} skips the release of "
                    f"{token!r} at line {release_line}"
                )
            elif raising is not None:
                call_line, types = raising
                base["reason"] = (
                    f"call at line {call_line} may raise "
                    f"{', '.join(types)}; the release of {token!r} at line "
                    f"{release_line} is skipped on that path"
                )
            else:
                continue
            if rule == "CW802" and "fix" in acq:
                base["fix"] = acq["fix"]
            self._emit(module_key, base)
        atomic = record.get("atomic")
        if isinstance(atomic, dict):
            if not atomic.get("fsync"):
                self._emit(
                    module_key,
                    {
                        "rule": "CW804",
                        "line": int(atomic["line"]),
                        "col": int(atomic.get("col", 0)),
                        "func": qualname,
                        "reason": (
                            "temp file is renamed into place at line "
                            f"{atomic['replace']} without an fsync — a crash "
                            "can publish truncated contents"
                        ),
                    },
                )
            if not atomic.get("cleanup"):
                self._emit(
                    module_key,
                    {
                        "rule": "CW804",
                        "line": int(atomic["line"]),
                        "col": int(atomic.get("col", 0)),
                        "func": qualname,
                        "reason": (
                            "staged temp file is not unlinked when the write "
                            "fails (no except/finally cleanup before the "
                            f"rename at line {atomic['replace']})"
                        ),
                    },
                )

    # -- coherence ---------------------------------------------------------

    def _judge_coherence(self, module_key: str, coherence: Dict[str, object]) -> None:
        for mutation in coherence.get("mutations", []):  # type: ignore[union-attr]
            if mutation.get("bumped"):
                continue
            self._emit(
                module_key,
                {
                    "rule": "CW805",
                    "line": int(mutation["line"]),
                    "col": int(mutation["col"]),
                    "attr": mutation["attr"],
                    "func": mutation["func"],
                    "class": mutation["class"],
                },
            )
        if coherence.get("defines_cache_class"):
            return  # the cache implementation touches its own internals
        for read in coherence.get("reads", []):  # type: ignore[union-attr]
            if read["recv"] not in self._cache_attrs:
                continue
            node = (module_key, str(read["func"]))
            if DOMAIN_HANDLER not in self.threads.domains.get(node, set()):
                continue
            self._emit(
                module_key,
                {
                    "rule": "CW806",
                    "line": int(read["line"]),
                    "col": int(read["col"]),
                    "attr": f"{read['recv']}.{read['attr']}",
                    "func": read["func"],
                },
            )

    # -- results -----------------------------------------------------------

    def records_for(self, module_key: str) -> List[Dict[str, object]]:
        """The CW801/802/804/805/806 finding records anchored in one module."""
        return self._records.get(module_key, [])

    def dep_digest(self, module_key: str) -> str:
        """Digest of the module's lifecycle findings for the cache dep-key."""
        payload = json.dumps(
            self.records_for(module_key), sort_keys=True, separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
