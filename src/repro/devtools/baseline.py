"""Finding baselines: ratchet CI on *new* findings only.

A baseline is a snapshot of the findings a tree is known (and temporarily
allowed) to have.  CI lints with ``--baseline .crowdlint-baseline.json`` and
fails only when a finding appears that the snapshot does not cover — so a
new rule pack can land with ``severity: error`` before every historical
finding is fixed, and the debt can only shrink: re-recording the file with
``--update-baseline`` after a cleanup drops the fixed entries.

Findings are identified by a *signature* — ``path::rule::digest`` where the
digest covers the message text — deliberately **not** by line number, so an
unrelated edit that shifts a finding down a few lines does not fail the
build.  Signatures are counted: a file allowed two CW501s fails CI when a
third shows up, even though the signature already exists.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "finding_signature",
    "load_baseline",
    "new_findings",
    "snapshot",
    "write_baseline",
]

BASELINE_VERSION = 1


def finding_signature(finding: Finding) -> str:
    """A line-number-free identity for one finding.

    ``path::rule::digest(message)`` — stable across edits that only move the
    finding, distinct across different messages from the same rule (the
    message embeds the offending name, so two different dead exports in one
    file do not collide).
    """
    digest = hashlib.sha256(finding.message.encode("utf-8")).hexdigest()[:12]
    path = finding.path.replace("\\", "/")
    return f"{path}::{finding.rule_id}::{digest}"


def snapshot(findings: Iterable[Finding]) -> Dict[str, object]:
    """The baseline payload covering exactly ``findings``."""
    counts = Counter(finding_signature(finding) for finding in findings)
    return {
        "version": BASELINE_VERSION,
        "entries": {signature: counts[signature] for signature in sorted(counts)},
    }


def load_baseline(path: Path) -> Dict[str, int]:
    """The signature counts recorded in ``path``.

    A missing file is an empty baseline (every finding is new) — that makes
    ``--baseline`` safe to turn on in CI before the snapshot first lands.
    A malformed file raises ``ValueError``: silently treating it as empty
    would fail CI with hundreds of "new" findings and no hint why.
    """
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return {}
    try:
        payload = json.loads(raw)
        version = payload["version"]
        entries = payload["entries"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed baseline file {path}: {exc}") from exc
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline file {path} has version {version!r}; "
            f"this crowdlint writes version {BASELINE_VERSION}"
        )
    if not isinstance(entries, dict) or not all(
        isinstance(count, int) and count > 0 for count in entries.values()
    ):
        raise ValueError(f"malformed baseline file {path}: bad entry counts")
    return dict(entries)


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count."""
    payload = snapshot(findings)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(payload["entries"].values())


def new_findings(
    findings: Iterable[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split ``findings`` against a baseline.

    Returns ``(new, suppressed)`` where ``new`` holds the findings the
    baseline does not cover and ``suppressed`` counts the ones it does.
    When a signature occurs more often than its recorded count, the
    *earliest* occurrences (sorted order: path, then line) are treated as
    the known ones and the overflow is reported — deterministic, and the
    reported line points at the most recently added site in the common
    append-at-the-end case.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        signature = finding_signature(finding)
        allowance = remaining.get(signature, 0)
        if allowance > 0:
            remaining[signature] = allowance - 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
