"""The declared import-layer map for the ``repro`` package.

The codebase is a DAG of packages; each entry below lists the *only*
``repro``-internal layers that package is allowed to import from.  The
import-layering rule (CW108) enforces this mechanically so that, e.g., a
convenience import of ``repro.web`` from ``repro.mining`` cannot silently
invert the architecture.

Reading the map bottom-up:

* ``geo``, ``taxonomy`` and ``obs`` (the observability substrate) are
  foundations — they import nothing internal; ``exec`` (the process-pool
  execution layer) sits just above, importing only ``obs``.
* ``data`` → ``sequences`` → ``mining`` is the record/sequence/pattern spine.
* ``crowd`` (the paper's §5 synchronization layer) sits on patterns and
  sequences but must never reach up into ``viz``/``web``.
* ``web`` and ``cli`` are leaves: nothing imports them except ``cli`` → ``web``
  (the CLI embeds the ``serve`` entry point) and ``bench`` → ``web`` (the
  serving load-test harness drives the server over real sockets).
  ``repro.web.cache`` and ``repro.web.tiles`` (the serving layer's response
  cache and tile/LOD index) live inside ``web`` and follow its rules.
* ``devtools`` (this subsystem) is intentionally isolated: it imports nothing
  from the rest of ``repro`` and nothing imports it.

Top-level modules (``repro.pipeline``, ``repro.persistence``) are treated as
single-module layers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

__all__ = ["DEVTOOLS_MODULES", "LAYER_MAP", "layer_of", "resolve_import"]

ROOT_PACKAGE = "repro"

#: Every module of the devtools subsystem itself.  The registry exists so
#: that docscheck (and the tests) can verify no module is added to the
#: package without being declared here — the cache fingerprint, the docs
#: catalog, and the layer isolation check all walk this list.
DEVTOOLS_MODULES: FrozenSet[str] = frozenset(
    {
        "baseline",
        "cache",
        "callgraph",
        "cli",
        "docscheck",
        "domains",
        "engine",
        "exceptions",
        "fix",
        "flow",
        "layers",
        "lint",
        "rules",
        "rules.common",
        "rules.concurrency",
        "rules.coordinates",
        "rules.datetimes",
        "rules.determinism",
        "rules.exceptions",
        "rules.exports",
        "rules.iddomains",
        "rules.imports",
        "rules.lifecycle",
        "rules.mutable_defaults",
        "rules.observability",
        "rules.perf",
        "rules.threadsafety",
        "rules.units",
        "resources",
        "sarif",
        "threads",
    }
)

LAYER_MAP: Dict[str, FrozenSet[str]] = {
    # foundations
    "geo": frozenset(),
    "obs": frozenset(),
    "taxonomy": frozenset(),
    "exec": frozenset({"obs"}),
    # data spine
    "data": frozenset({"geo", "taxonomy"}),
    "sequences": frozenset({"data", "geo", "taxonomy"}),
    "mining": frozenset({"obs", "sequences", "taxonomy"}),
    # analytics over the spine
    "analysis": frozenset({"data", "geo"}),
    "patterns": frozenset({"data", "exec", "mining", "obs", "sequences", "taxonomy"}),
    "prediction": frozenset({"geo", "mining", "sequences"}),
    "crowd": frozenset(
        {"data", "exec", "geo", "obs", "patterns", "sequences", "taxonomy"}
    ),
    # presentation
    "viz": frozenset({"crowd", "data", "geo", "sequences"}),
    # top-level orchestration modules
    "pipeline": frozenset(
        {
            "crowd",
            "data",
            "exec",
            "geo",
            "mining",
            "obs",
            "patterns",
            "sequences",
            "taxonomy",
        }
    ),
    # perf-regression harness: times the spine end to end, and (for the
    # serving load test) the web layer it drives over real sockets
    "bench": frozenset(
        {
            "data",
            "exec",
            "experiments",
            "mining",
            "obs",
            "patterns",
            "pipeline",
            "sequences",
            "taxonomy",
            "web",
        }
    ),
    "persistence": frozenset({"mining", "patterns", "sequences", "taxonomy"}),
    # harnesses
    "experiments": frozenset(
        {
            "crowd",
            "data",
            "geo",
            "mining",
            "patterns",
            "pipeline",
            "prediction",
            "sequences",
            "taxonomy",
            "viz",
        }
    ),
    # leaves
    "web": frozenset(
        {
            "analysis",
            "crowd",
            "data",
            "exec",
            "experiments",
            "geo",
            "obs",
            "patterns",
            "persistence",
            "pipeline",
            "sequences",
            "taxonomy",
            "viz",
        }
    ),
    "cli": frozenset(
        {
            "analysis",
            "crowd",
            "data",
            "exec",
            "experiments",
            "mining",
            "obs",
            "patterns",
            "pipeline",
            "sequences",
            "taxonomy",
            "web",
        }
    ),
    # static analysis: fully isolated
    "devtools": frozenset(),
}


def layer_of(module: Optional[str]) -> Optional[str]:
    """The layer a dotted module belongs to, or ``None`` for external modules.

    ``repro.crowd.sync`` → ``crowd``; ``repro.pipeline`` → ``pipeline``;
    ``repro`` itself and non-``repro`` modules → ``None``.
    """
    if not module:
        return None
    parts = module.split(".")
    if parts[0] != ROOT_PACKAGE or len(parts) < 2:
        return None
    return parts[1]


def resolve_import(
    current_module: Optional[str],
    node_module: Optional[str],
    level: int,
    is_init: bool,
) -> Optional[str]:
    """Resolve an ``import``/``from ... import`` target to an absolute module.

    ``level`` is the relative-import level from :class:`ast.ImportFrom`
    (0 for absolute imports).  Returns ``None`` when the target cannot be
    resolved (relative import from an unknown module, or a relative level
    that escapes the package root).
    """
    if level == 0:
        return node_module
    if not current_module:
        return None
    # For ``from . import x`` inside a package __init__, the package itself is
    # the base; inside a plain module the containing package is.
    parts = current_module.split(".")
    if not is_init:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    if node_module:
        return ".".join(base + [node_module]) if base else node_module
    return ".".join(base) or None
