"""Command-line interface for crowdlint.

Exit codes:

* ``0`` — clean (no findings; with ``--fix``, nothing left after fixing)
* ``1`` — findings remain
* ``2`` — usage or internal error (bad path, unknown rule id)

``--fix`` rewrites files in place using each rule's exact-span fixes and
reports what is left; ``--diff`` previews the same rewrite as a unified
diff without touching anything.  Results are cached per file content under
``--cache-dir`` (default ``.crowdlint-cache/``) and cache misses can be
analyzed in parallel with ``--jobs N``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, new_findings, write_baseline
from .cache import DEFAULT_CACHE_DIR, LintCache
from .engine import LintEngine, all_rules, iter_python_files, module_name_for, rule_registry
from .fix import fix_file, fix_source, unified_diff
from .sarif import sarif_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdweb-lint",
        description="Domain-aware static analysis for the CrowdWeb codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe automatic fixes in place, then report what remains",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="preview automatic fixes as a unified diff; changes nothing",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze cache misses on N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count summary",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="report only findings not recorded in FILE (the ratchet)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --baseline: record the current findings in FILE and exit 0",
    )
    parser.add_argument(
        "--callgraph",
        action="store_true",
        help="print the resolved whole-program call graph instead of linting",
    )
    parser.add_argument(
        "--dot",
        action="store_true",
        help="with --callgraph: emit Graphviz DOT instead of edge lines",
    )
    parser.add_argument(
        "--threads",
        action="store_true",
        help="print discovered thread roots and shared state instead of linting",
    )
    parser.add_argument(
        "--raises",
        metavar="SYMBOL",
        help="print the inferred exception-propagation chain for one "
             "function (module:qualname) instead of linting",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --list-rules: emit the rule catalog as JSON",
    )
    return parser


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    return [part.strip() for value in values for part in value.split(",") if part.strip()]


def _list_rules(as_json: bool) -> int:
    rules = sorted(all_rules(), key=lambda rule: rule.id)
    if as_json:
        print(
            json.dumps(
                [
                    {
                        "id": rule.id,
                        "name": rule.name,
                        "description": rule.description,
                        "fixable": rule.fixable,
                    }
                    for rule in rules
                ],
                indent=2,
            )
        )
    else:
        for rule in rules:
            marker = "*" if rule.fixable else " "
            print(f"{rule.id}{marker} {rule.name:<26} {rule.description}")
        print("\n(* = supports --fix)", file=sys.stderr)
    return 0


def _print_callgraph(paths: List[Path], as_dot: bool) -> int:
    """``--callgraph``: build the whole-program graph and print it."""
    from .callgraph import ProjectAnalysis  # deferred: lint runs may skip it

    files = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            print(f"crowdweb-lint: unreadable file {file_path}: {exc}", file=sys.stderr)
            return 2
        files.append(
            (str(file_path), source, module_name_for(file_path),
             file_path.name == "__init__.py")
        )
    graph = ProjectAnalysis.build(files).call_graph()
    print(graph.to_dot() if as_dot else graph.render())
    return 0


def _print_threads(paths: List[Path]) -> int:
    """``--threads``: the race-detector's view — roots, shared state, locks."""
    from .callgraph import ProjectAnalysis  # deferred: lint runs may skip it

    files = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            print(f"crowdweb-lint: unreadable file {file_path}: {exc}", file=sys.stderr)
            return 2
        files.append(
            (str(file_path), source, module_name_for(file_path),
             file_path.name == "__init__.py")
        )
    print(ProjectAnalysis.build(files).threads().render())
    return 0


def _print_raises(paths: List[Path], symbol: str) -> int:
    """``--raises``: one function's inferred may-raise propagation chain."""
    from .callgraph import ProjectAnalysis  # deferred: lint runs may skip it

    files = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            print(f"crowdweb-lint: unreadable file {file_path}: {exc}", file=sys.stderr)
            return 2
        files.append(
            (str(file_path), source, module_name_for(file_path),
             file_path.name == "__init__.py")
        )
    analysis = ProjectAnalysis.build(files).exceptions()
    rendered = analysis.render_chain(symbol)
    print(rendered)
    return 2 if rendered.startswith("--raises: unknown symbol") else 0


def _run_fix(engine: LintEngine, paths: List[Path], diff_only: bool) -> int:
    """``--fix`` / ``--diff``: rewrite (or preview) then report the rest.

    Project-scoped rules (CW703's setdefault rewrite) attach fixes the
    per-file re-lint cannot reproduce, so one whole-program lint seeds the
    fixer with every fixable finding up front.
    """
    remaining = []
    fixed_files = 0
    fixes_applied = 0
    seeds: dict = {}
    for finding in engine.lint_paths(paths):
        if finding.fix is not None:
            seeds.setdefault(finding.path, []).append(finding)
    for file_path in iter_python_files(paths):
        seed = seeds.get(str(file_path), ())
        if diff_only:
            try:
                original = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            result = fix_source(
                engine, original, str(file_path), module_name_for(file_path),
                seed_findings=seed,
            )
            if result.changed:
                sys.stdout.write(unified_diff(original, result.source, str(file_path)))
        else:
            result = fix_file(
                engine, file_path, module_name_for(file_path), seed_findings=seed
            )
            if result is None:
                continue
        if result.changed:
            fixed_files += 1
            fixes_applied += result.applied
        remaining.extend(result.remaining)
    verb = "would fix" if diff_only else "fixed"
    print(
        f"crowdweb-lint: {verb} {fixes_applied} finding(s) in {fixed_files} file(s); "
        f"{len(remaining)} remaining",
        file=sys.stderr,
    )
    for finding in sorted(remaining):
        print(finding.format())
    return 1 if remaining else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        return _list_rules(args.json)

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"crowdweb-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    known = set(rule_registry())
    unknown = [
        rule_id
        for rule_id in (_split_ids(args.select) or []) + (_split_ids(args.ignore) or [])
        if rule_id.upper() not in known
    ]
    if unknown:
        print(
            f"crowdweb-lint: unknown rule id: {', '.join(unknown)} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2

    engine = LintEngine(select=_split_ids(args.select), ignore=_split_ids(args.ignore))
    paths = [Path(path) for path in args.paths]

    if args.callgraph or args.dot:
        return _print_callgraph(paths, as_dot=args.dot)

    if args.threads:
        return _print_threads(paths)

    if args.raises:
        return _print_raises(paths, args.raises)

    if args.update_baseline and args.baseline is None:
        print("crowdweb-lint: --update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    if args.fix or args.diff:
        return _run_fix(engine, paths, diff_only=args.diff and not args.fix)

    cache = None if args.no_cache else LintCache(root=args.cache_dir)
    findings = engine.lint_paths(paths, jobs=max(1, args.jobs), cache=cache)

    if args.baseline is not None:
        if args.update_baseline:
            recorded = write_baseline(args.baseline, findings)
            print(
                f"crowdweb-lint: recorded {recorded} finding(s) in {args.baseline}",
                file=sys.stderr,
            )
            return 0
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"crowdweb-lint: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = new_findings(findings, baseline)
        if suppressed:
            print(
                f"crowdweb-lint: {suppressed} baselined finding(s) suppressed",
                file=sys.stderr,
            )

    if args.format == "sarif":
        print(sarif_json(findings))
    elif args.format == "json":
        payload = {
            "findings": [finding.as_dict() for finding in findings],
            "count": len(findings),
            "by_rule": dict(Counter(finding.rule_id for finding in findings)),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        if args.statistics and findings:
            print()
            for rule_id, count in sorted(Counter(f.rule_id for f in findings).items()):
                print(f"{count:5d}  {rule_id}")
        if findings:
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"\n{len(findings)} {noun}.", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.devtools.lint
    sys.exit(main())
