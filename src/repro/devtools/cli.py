"""Command-line interface for crowdlint.

Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from .engine import LintEngine, all_rules, rule_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdweb-lint",
        description="Domain-aware static analysis for the CrowdWeb codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count summary",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    return parser


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    return [part.strip() for value in values for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<26} {rule.description}")
        return 0

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"crowdweb-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    known = set(rule_registry())
    unknown = [
        rule_id
        for rule_id in (_split_ids(args.select) or []) + (_split_ids(args.ignore) or [])
        if rule_id.upper() not in known
    ]
    if unknown:
        print(
            f"crowdweb-lint: unknown rule id: {', '.join(unknown)} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2

    engine = LintEngine(select=_split_ids(args.select), ignore=_split_ids(args.ignore))
    findings = engine.lint_paths(Path(path) for path in args.paths)

    if args.format == "json":
        payload = {
            "findings": [finding.as_dict() for finding in findings],
            "count": len(findings),
            "by_rule": dict(Counter(finding.rule_id for finding in findings)),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        if args.statistics and findings:
            print()
            for rule_id, count in sorted(Counter(f.rule_id for f in findings).items()):
                print(f"{count:5d}  {rule_id}")
        if findings:
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"\n{len(findings)} {noun}.", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.devtools.lint
    sys.exit(main())
