"""SARIF 2.1.0 output for crowdlint.

SARIF (Static Analysis Results Interchange Format) is the payload GitHub
code scanning ingests; emitting it lets the CI lint job publish findings as
review annotations instead of log lines.  The writer is deliberately
minimal: one run, one driver, the rule catalog in ``tool.driver.rules``,
and one ``result`` per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .engine import Finding, all_rules

__all__ = ["sarif_payload", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Tool identity reported in the SARIF driver block.
TOOL_NAME = "crowdweb-lint"
TOOL_URI = "https://github.com/crowdweb/crowdweb"

#: Finding severities → SARIF result levels (anything unknown → warning).
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def sarif_payload(findings: Iterable[Finding]) -> dict:
    """The findings as a SARIF 2.1.0 ``log`` object (a plain dict)."""
    findings = list(findings)
    rules = sorted(all_rules(), key=lambda rule: rule.id)
    rule_index = {rule.id: index for index, rule in enumerate(rules)}
    results: List[dict] = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        if finding.fix is not None:
            result["properties"] = {"fixable": True}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.description},
                                "properties": {"fixable": rule.fixable},
                            }
                            for rule in rules
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def sarif_json(findings: Iterable[Finding]) -> str:
    return json.dumps(sarif_payload(findings), indent=2, sort_keys=True)
