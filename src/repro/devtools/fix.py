"""The crowdlint autofix engine.

A :class:`~.engine.Fix` is a tuple of exact character-span
:class:`~.engine.Edit`\\ s produced by a rule against the *original* source.
This module turns those into rewritten files, with three properties the
tests pin down:

* **Safety** — overlapping fixes are never combined in one pass.  Fixes are
  applied in source order, dropping any fix whose spans intersect an
  already-accepted one; the dropped fix's finding survives to the next pass.
  A pass whose output fails to re-parse is discarded wholesale.
* **Idempotency** — :func:`fix_source` re-lints after every pass and stops
  at a fixpoint (no fixable findings, or the source stopped changing), so
  ``fix(fix(x)) == fix(x)`` and a clean file round-trips byte-identically.
* **Reviewability** — :func:`unified_diff` renders the change as a standard
  unified diff for ``--diff`` preview without touching the file.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from .engine import Finding, Fix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintEngine

__all__ = ["FixResult", "apply_fixes", "fix_source", "fix_file", "unified_diff"]

#: Safety valve: a rule whose "fix" keeps producing new findings would
#: otherwise loop forever.  Real chains converge in 2-3 passes.
MAX_PASSES = 10


@dataclass(frozen=True)
class FixResult:
    """Outcome of fixing one source blob."""

    source: str          #: the rewritten source (== original when nothing applied)
    applied: int         #: number of fixes applied across all passes
    passes: int          #: lint→patch rounds executed
    remaining: Tuple[Finding, ...]  #: findings still present after the last pass

    @property
    def changed(self) -> bool:
        return self.applied > 0


def _non_overlapping(fixes: Sequence[Fix]) -> List[Fix]:
    """Greedy left-to-right selection of fixes with disjoint edit spans."""
    chosen: List[Fix] = []
    occupied: List[Tuple[int, int]] = []
    for fix in sorted(fixes, key=lambda f: (f.start, f.end)):
        spans = [(edit.start, edit.end) for edit in fix.edits]
        if any(
            start < busy_end and busy_start < end
            for start, end in spans
            for busy_start, busy_end in occupied
        ):
            continue
        # Zero-width inserts at the same offset would reorder unpredictably.
        if any(
            start == busy_start
            for start, _ in spans
            for busy_start, _ in occupied
        ):
            continue
        chosen.append(fix)
        occupied.extend(spans)
    return chosen


def apply_fixes(source: str, findings: Iterable[Finding]) -> Tuple[str, int]:
    """Apply one pass of non-overlapping fixes; returns (new source, applied).

    Edits are validated against the source length and applied from the end
    of the file backwards so earlier offsets stay stable.
    """
    fixes = [f.fix for f in findings if f.fix is not None]
    fixes = [
        fix
        for fix in fixes
        if all(0 <= e.start <= e.end <= len(source) for e in fix.edits)
    ]
    chosen = _non_overlapping(fixes)
    if not chosen:
        return source, 0
    edits = sorted(
        (edit for fix in chosen for edit in fix.edits),
        key=lambda e: (e.start, e.end),
        reverse=True,
    )
    for edit in edits:
        source = source[: edit.start] + edit.replacement + source[edit.end :]
    return source, len(chosen)


def fix_source(
    engine: "LintEngine",
    source: str,
    path: str = "<string>",
    module: str = "",
    max_passes: int = MAX_PASSES,
    seed_findings: Sequence[Finding] = (),
) -> FixResult:
    """Lint → patch → re-lint to a fixpoint.  Never returns broken syntax.

    ``seed_findings`` extends the first pass with findings the single-file
    lint cannot reproduce — project-scoped rules like CW703, whose fixes
    were computed by a whole-program run.  Their spans are only valid
    against the original source, so they never carry into later passes;
    duplicates of single-file findings are dropped by the overlap filter.
    """
    applied_total = 0
    passes = 0
    findings: Tuple[Finding, ...] = tuple(seed_findings) + tuple(
        engine.lint_source(source, path, module)
    )
    while passes < max_passes and any(f.fix for f in findings):
        candidate, applied = apply_fixes(source, findings)
        passes += 1
        if applied == 0 or candidate == source:
            break
        try:
            compile(candidate, path, "exec", dont_inherit=True)
        except SyntaxError:
            break  # a bad rewrite must not escape; keep the last good source
        source = candidate
        applied_total += applied
        findings = tuple(engine.lint_source(source, path, module))
    return FixResult(
        source=source, applied=applied_total, passes=passes, remaining=findings
    )


def fix_file(
    engine: "LintEngine",
    path: Path,
    module: str = "",
    write: bool = True,
    seed_findings: Sequence[Finding] = (),
) -> Optional[FixResult]:
    """Fix one file in place; returns ``None`` when it cannot be read."""
    try:
        original = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    result = fix_source(engine, original, str(path), module, seed_findings=seed_findings)
    if write and result.changed:
        path.write_text(result.source, encoding="utf-8")
    return result


def unified_diff(original: str, fixed: str, path: str) -> str:
    """A standard unified diff of the fix, empty when nothing changed."""
    if original == fixed:
        return ""
    return "".join(
        difflib.unified_diff(
            original.splitlines(keepends=True),
            fixed.splitlines(keepends=True),
            fromfile=f"a/{path}",
            tofile=f"b/{path}",
        )
    )
