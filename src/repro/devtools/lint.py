"""``python -m repro.devtools.lint`` — the canonical crowdlint entry point.

Kept separate from :mod:`repro.devtools.cli` so the module name reads as a
verb at the command line; the console script (``crowdweb-lint``) points here
too.
"""

from __future__ import annotations

import sys

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
