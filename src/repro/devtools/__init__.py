"""crowdlint: domain-aware static analysis for the CrowdWeb codebase.

This subsystem is deliberately self-contained and stdlib-only: it must be
runnable in CI before any project dependency is installed, and it must never
import from the packages it lints (``repro.geo``, ``repro.crowd``, ...).

Entry points:

* ``python -m repro.devtools.lint src/ tests/`` — lint one or more trees.
* ``crowdweb-lint`` — the same CLI as a console script.

The engine lives in :mod:`repro.devtools.engine`, the import-layer map in
:mod:`repro.devtools.layers`, and the individual rules under
:mod:`repro.devtools.rules`.
"""

from .engine import Finding, LintEngine, Rule, all_rules, get_rule, rule_registry
from .layers import LAYER_MAP, layer_of, resolve_import

__all__ = [
    "Finding",
    "LAYER_MAP",
    "LintEngine",
    "Rule",
    "all_rules",
    "get_rule",
    "layer_of",
    "resolve_import",
    "rule_registry",
]
