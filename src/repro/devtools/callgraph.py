"""Whole-program call graph and the project analysis orchestrator.

``domains.extract_summary`` reduces each module to a symbolic digest; this
module stitches the digests together.  :class:`ProjectAnalysis` resolves the
symbolic callee forms across module boundaries — through imports and their
aliases, module attributes, ``functools.partial`` wrappers, ``self`` dispatch,
and methods on locally-constructed instances — then solves the interprocedural
:class:`~repro.devtools.domains.DomainEnv` fixpoint over the resolved edges.

Three consumers sit on top:

* the **CW6xx rules** read :meth:`ProjectAnalysis.call_conflicts` (known
  actual domain vs. known, different expected domain at a resolved call) and
  :meth:`ProjectAnalysis.dead_exports` (``__all__`` entries no other module
  references or imports);
* the **engine/cache** read :meth:`ProjectAnalysis.dep_key`, a digest of
  everything a module's findings can observe about the rest of the project —
  a file is re-analyzed only when its content *or* that digest changes;
* the **CLI** renders :class:`CallGraph` (``--callgraph``, ``--dot``).

Resolution is deliberately conservative: a call that cannot be pinned to a
single definition produces no edge, no conflict, and no cache dependency.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .domains import (
    CONFLICT,
    FAMILIES,
    DomainEnv,
    FunctionRef,
    extract_summary,
)
from .exceptions import ExceptionAnalysis
from .resources import LifecycleAnalysis
from .threads import ThreadAnalysis

__all__ = ["CallGraph", "ProjectAnalysis"]

#: ``("func", ref)`` / ``("class", cref)`` / ``("module", name)`` — what a
#: name resolves to before call semantics (constructor vs. plain call) apply.
_Target = Tuple[str, object]


class CallGraph:
    """A directed graph over ``"module:qualname"`` nodes."""

    def __init__(self) -> None:
        self.nodes: Set[str] = set()
        self._out: Dict[str, Set[str]] = {}
        self._in: Dict[str, Set[str]] = {}

    def add_node(self, node: str) -> None:
        self.nodes.add(node)

    def add_edge(self, src: str, dst: str) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        self._out.setdefault(src, set()).add(dst)
        self._in.setdefault(dst, set()).add(src)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return sorted(
            (src, dst) for src, dsts in self._out.items() for dst in dsts
        )

    def callees(self, node: str) -> Set[str]:
        return set(self._out.get(node, set()))

    def callers(self, node: str) -> Set[str]:
        return set(self._in.get(node, set()))

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every node transitively callable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.nodes]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._out.get(node, ()))
        return seen

    def render(self) -> str:
        """Sorted ``caller -> callee`` lines (the ``--callgraph`` output)."""
        lines = [f"{src} -> {dst}" for src, dst in self.edges]
        isolated = sorted(
            node
            for node in self.nodes
            if node not in self._out and node not in self._in
        )
        lines.extend(f"{node} (no resolved calls)" for node in isolated)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering, one subgraph cluster per module."""
        by_module: Dict[str, List[str]] = {}
        for node in sorted(self.nodes):
            module, _, qualname = node.partition(":")
            by_module.setdefault(module, []).append(qualname)
        out = ["digraph crowdweb_calls {", "  rankdir=LR;", "  node [shape=box];"]
        for index, (module, qualnames) in enumerate(sorted(by_module.items())):
            out.append(f'  subgraph "cluster_{index}" {{')
            out.append(f'    label="{module}";')
            for qualname in qualnames:
                out.append(f'    "{module}:{qualname}" [label="{qualname}"];')
            out.append("  }")
        for src, dst in self.edges:
            out.append(f'  "{src}" -> "{dst}";')
        out.append("}")
        return "\n".join(out)


class ProjectAnalysis:
    """Summaries + resolution + solved domains for one lint invocation.

    Construct via :meth:`build` (extracts or cache-loads summaries, then
    solves the domain fixpoint) or :meth:`from_dict` (rehydrates a solved
    analysis shipped to a worker process — no re-solving).
    """

    _MAX_CHASE = 6  # import/alias chains longer than this stay unresolved

    def __init__(self, summaries: Dict[str, Dict[str, object]]):
        self.summaries = summaries
        self.env = DomainEnv()
        self.summaries_built = 0
        self.summaries_cached = 0
        self._resolve_cache: Dict[Tuple[str, str, str], Optional[Tuple[FunctionRef, bool]]] = {}
        self._conflicts: Dict[str, List[Dict[str, object]]] = {}
        self._dead: Dict[str, List[Dict[str, object]]] = {}
        self._dep_keys: Dict[str, str] = {}
        self._thread_analysis: Optional["ThreadAnalysis"] = None
        self._exception_analysis: Optional["ExceptionAnalysis"] = None
        self._lifecycle_analysis: Optional["LifecycleAnalysis"] = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def build(
        cls,
        files: Iterable[Tuple[str, str, Optional[str], bool]],
        cache: Optional[object] = None,
    ) -> "ProjectAnalysis":
        """Analyze ``(path, source, module, is_init)`` tuples into a project.

        ``cache`` (a :class:`~repro.devtools.cache.LintCache`) serves
        content-addressed summaries so unchanged files never re-parse.
        """
        summaries: Dict[str, Dict[str, object]] = {}
        built = cached = 0
        for path, source, module, is_init in files:
            key = module or str(path)
            summary = None
            if cache is not None:
                summary = cache.get_summary(source, module, is_init)
            if summary is None:
                try:
                    tree = ast.parse(source)
                except (SyntaxError, ValueError):
                    continue
                summary = extract_summary(tree, module, str(path), is_init)
                built += 1
                if cache is not None:
                    cache.put_summary(source, module, is_init, summary)
            else:
                cached += 1
            summaries[key] = summary
        project = cls(summaries)
        project.summaries_built = built
        project.summaries_cached = cached
        project.env.solve(summaries, project.resolve)
        return project

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe snapshot (summaries + solved fixpoint) for workers."""
        return {
            "summaries": self.summaries,
            "expected": {
                _ref_key(ref): slots for ref, slots in self.env.expected.items()
            },
            "ret": {_ref_key(ref): slots for ref, slots in self.env.ret.items()},
            "seeded": {
                _ref_key(ref): {param: sorted(families) for param, families in per.items()}
                for ref, per in self.env.seeded.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProjectAnalysis":
        project = cls(data["summaries"])  # type: ignore[arg-type]
        project.env.expected = {
            _ref_from_key(key): slots
            for key, slots in data["expected"].items()  # type: ignore[union-attr]
        }
        project.env.ret = {
            _ref_from_key(key): slots
            for key, slots in data["ret"].items()  # type: ignore[union-attr]
        }
        project.env.seeded = {
            _ref_from_key(key): {param: set(families) for param, families in per.items()}
            for key, per in data["seeded"].items()  # type: ignore[union-attr]
        }
        return project

    # ------------------------------------------------------------ resolution

    def resolve(
        self, module_key: str, caller: str, sym: Sequence[object]
    ) -> Optional[Tuple[FunctionRef, bool]]:
        """Pin a symbolic callee to ``(ref, bound)`` or give up with ``None``.

        ``bound`` means the first positional parameter is an implicit
        ``self`` already supplied by the dispatch (method on an instance, or
        a constructor call resolving to ``__init__``).
        """
        cache_key = (module_key, caller, json.dumps(sym))
        if cache_key in self._resolve_cache:
            return self._resolve_cache[cache_key]
        self._resolve_cache[cache_key] = None  # cycles resolve to "don't know"
        resolved = self._resolve_uncached(module_key, caller, list(sym))
        self._resolve_cache[cache_key] = resolved
        return resolved

    def _resolve_uncached(
        self, module_key: str, caller: str, sym: List[object]
    ) -> Optional[Tuple[FunctionRef, bool]]:
        kind = sym[0]
        if kind == "partial":
            # Hints never carry partials, but be total anyway.
            return self.resolve(module_key, caller, sym[1])  # type: ignore[arg-type]
        if kind == "name":
            return self._as_callable(self._lookup(module_key, sym[1]))  # type: ignore[arg-type]
        if kind == "self":
            info = self._function_info(module_key, caller)
            class_name = info.get("class") if info else None
            if not class_name:
                return None
            ref = self._method_ref((module_key, class_name), sym[1])  # type: ignore[arg-type]
            return (ref, True) if ref else None
        if kind == "attr":
            return self._resolve_attr(module_key, caller, sym[1], sym[2])  # type: ignore[arg-type]
        if kind == "dotted":
            return self._resolve_dotted(module_key, sym[1])  # type: ignore[arg-type]
        if kind == "new":
            cref = self._class_of_sym(module_key, caller, sym[1])  # type: ignore[arg-type]
            if cref is None:
                return None
            ref = self._method_ref(cref, sym[2])  # type: ignore[arg-type]
            return (ref, True) if ref else None
        return None

    def _resolve_attr(
        self, module_key: str, caller: str, root: str, method: str
    ) -> Optional[Tuple[FunctionRef, bool]]:
        # A method on a locally-constructed instance: obj = Cls(); obj.m().
        for scope in (caller, "<module>"):
            info = self._function_info(module_key, scope)
            ctor = info.get("ctors", {}).get(root) if info else None  # type: ignore[union-attr]
            if ctor is not None:
                cref = self._class_of_sym(module_key, scope, ctor)
                if cref is not None:
                    ref = self._method_ref(cref, method)
                    return (ref, True) if ref else None
                return None
        target = self._lookup(module_key, root)
        if target is None:
            return None
        if target[0] == "module":
            return self._as_callable(self._lookup(str(target[1]), method))
        if target[0] == "class":
            # Cls.m(instance, ...) — unbound access, self passed explicitly.
            ref = self._method_ref(target[1], method)  # type: ignore[arg-type]
            return (ref, False) if ref else None
        return None

    def _resolve_dotted(
        self, module_key: str, dotted: str
    ) -> Optional[Tuple[FunctionRef, bool]]:
        parts = dotted.split(".")
        target = self._lookup(module_key, parts[0])
        if target is not None and target[0] == "module":
            base, rest = str(target[1]), parts[1:]
        else:
            # An absolute dotted path (``import a.b`` then ``a.b.c.f()``).
            base, rest = "", []
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                if prefix in self.summaries:
                    base, rest = prefix, parts[cut:]
                    break
            if not base:
                return None
        while len(rest) > 1:
            submodule = f"{base}.{rest[0]}"
            if submodule in self.summaries:
                base, rest = submodule, rest[1:]
                continue
            inner = self._lookup(base, rest[0])
            if inner is not None and inner[0] == "class" and len(rest) == 2:
                ref = self._method_ref(inner[1], rest[1])  # type: ignore[arg-type]
                return (ref, False) if ref else None
            return None
        if not rest:
            return None
        return self._as_callable(self._lookup(base, rest[0]))

    def _lookup(
        self, module_key: str, name: str, depth: int = _MAX_CHASE
    ) -> Optional[_Target]:
        """What ``name`` denotes inside ``module_key``, chasing re-exports."""
        summary = self.summaries.get(module_key)
        if summary is None or depth <= 0:
            return None
        functions: Dict[str, object] = summary["functions"]  # type: ignore[assignment]
        if name != "<module>" and name in functions:
            return ("func", (module_key, name))
        if name in summary["classes"]:  # type: ignore[operator]
            return ("class", (module_key, name))
        alias = summary["aliases"].get(name)  # type: ignore[union-attr]
        if alias:
            return self._lookup(module_key, alias, depth - 1)
        imported = summary["imports"].get(name)  # type: ignore[union-attr]
        if imported is None:
            return None
        if imported[0] == "module":
            return ("module", imported[1])
        _, target_module, original = imported
        if target_module in self.summaries:
            resolved = self._lookup(str(target_module), str(original), depth - 1)
            if resolved is not None:
                return resolved
        submodule = f"{target_module}.{original}"
        if submodule in self.summaries or any(
            key.startswith(submodule + ".") for key in self.summaries
        ):
            return ("module", submodule)
        return None

    def _as_callable(
        self, target: Optional[_Target]
    ) -> Optional[Tuple[FunctionRef, bool]]:
        if target is None:
            return None
        if target[0] == "func":
            return (target[1], False)  # type: ignore[return-value]
        if target[0] == "class":
            ref = self._method_ref(target[1], "__init__")  # type: ignore[arg-type]
            return (ref, True) if ref else None
        return None

    def _class_of_sym(
        self, module_key: str, caller: str, sym: Sequence[object]
    ) -> Optional[Tuple[str, str]]:
        kind = sym[0]
        target: Optional[_Target] = None
        if kind == "name":
            target = self._lookup(module_key, str(sym[1]))
        elif kind == "attr":
            root = self._lookup(module_key, str(sym[1]))
            if root is not None and root[0] == "module":
                target = self._lookup(str(root[1]), str(sym[2]))
        elif kind == "dotted":
            parts = str(sym[1]).rsplit(".", 1)
            if len(parts) == 2:
                root = self._lookup(module_key, parts[0])
                if root is not None and root[0] == "module":
                    target = self._lookup(str(root[1]), parts[1])
        if target is not None and target[0] == "class":
            return target[1]  # type: ignore[return-value]
        return None

    def _method_ref(
        self, cref: Tuple[str, str], method: str, depth: int = _MAX_CHASE
    ) -> Optional[FunctionRef]:
        """The defining ``(module, "Cls.method")`` ref, walking base classes."""
        if depth <= 0:
            return None
        module_key, class_name = cref
        summary = self.summaries.get(module_key)
        if summary is None:
            return None
        info = summary["classes"].get(class_name)  # type: ignore[union-attr]
        if info is None:
            return None
        if method in info["methods"]:
            return (module_key, f"{class_name}.{method}")
        for base_sym in info["bases"]:
            base_cref = self._class_of_sym(module_key, "<module>", base_sym)
            if base_cref is not None:
                found = self._method_ref(base_cref, method, depth - 1)
                if found is not None:
                    return found
        return None

    def _function_info(
        self, module_key: str, qualname: str
    ) -> Optional[Dict[str, object]]:
        summary = self.summaries.get(module_key)
        if summary is None:
            return None
        return summary["functions"].get(qualname)  # type: ignore[union-attr]

    # ------------------------------------------------------------ call graph

    def call_graph(self) -> CallGraph:
        graph = CallGraph()
        for module_key in sorted(self.summaries):
            for qualname in self.summaries[module_key]["functions"]:  # type: ignore[union-attr]
                graph.add_node(f"{module_key}:{qualname}")
        for module_key, call, ref, _bound in self._resolved_calls():
            graph.add_edge(
                f"{module_key}:{call['caller']}", f"{ref[0]}:{ref[1]}"
            )
        return graph

    def _resolved_calls(
        self, only_module: Optional[str] = None
    ) -> Iterator[Tuple[str, Dict[str, object], FunctionRef, bool]]:
        keys = [only_module] if only_module is not None else sorted(self.summaries)
        for module_key in keys:
            summary = self.summaries.get(module_key)
            if summary is None:
                continue
            for call in summary["calls"]:  # type: ignore[index]
                resolved = self.resolve(module_key, call["caller"], call["callee"])
                if resolved is not None:
                    yield module_key, call, resolved[0], resolved[1]

    # ------------------------------------------------------------ rule feeds

    def call_conflicts(self, module_key: str) -> List[Dict[str, object]]:
        """Known-vs-known domain disagreements at calls made *by* a module.

        Each record carries everything the CW6xx rules need to phrase and
        anchor a finding; conflicted (``CONFLICT``) and unknown slots are
        filtered before this point, so every record is a definite claim.
        """
        if module_key in self._conflicts:
            return self._conflicts[module_key]
        records: List[Dict[str, object]] = []
        for _, call, ref, bound in self._resolved_calls(module_key):
            info = self._function_info(ref[0], ref[1])
            if info is None:
                continue
            positional = list(info["positional"])  # type: ignore[arg-type]
            if bound and positional:
                positional = positional[1:]
            pairs: List[Tuple[str, List[object], str]] = []
            base = int(call["offset"])  # type: ignore[arg-type]
            for index, hint in enumerate(call["args"]):  # type: ignore[arg-type]
                slot = base + index
                if slot >= len(positional):
                    break
                pairs.append((positional[slot], hint, call["texts"][index]))  # type: ignore[index]
            for kw_name, hint in sorted(call["kwargs"].items()):  # type: ignore[union-attr]
                if kw_name in info["params"]:  # type: ignore[operator]
                    pairs.append((kw_name, hint, call["kw_texts"][kw_name]))  # type: ignore[index]
            for param, hint, text in pairs:
                actual = (
                    self.env.hint_domains(module_key, call["caller"], hint, self.resolve)
                    or {}
                )
                expected = self.env.expected_domains(ref, param)
                for family in FAMILIES:
                    have = actual.get(family)
                    want = expected.get(family)
                    if not have or not want or have == want:
                        continue
                    if CONFLICT in (have, want):
                        continue
                    records.append(
                        {
                            "family": family,
                            "line": call["line"],
                            "col": call["col"],
                            "caller": call["caller"],
                            "callee": f"{ref[0]}.{ref[1]}",
                            "param": param,
                            "expected": want,
                            "actual": have,
                            "arg": text,
                        }
                    )
        self._conflicts[module_key] = records
        return records

    def dead_exports(self, module_key: str) -> List[Dict[str, object]]:
        """``__all__`` entries of a module no other module references.

        Conservative: ``__init__.py`` re-export surfaces and ``_``-prefixed
        names are exempt, and any textual reference (call, attribute, or
        import) from another module keeps a symbol alive.
        """
        if module_key in self._dead:
            return self._dead[module_key]
        summary = self.summaries.get(module_key, {})
        exports = summary.get("exports")
        records: List[Dict[str, object]] = []
        if exports and not summary.get("is_init"):
            for name in exports:
                if name.startswith("_"):
                    continue
                if self._referenced_elsewhere(module_key, name):
                    continue
                info = summary["functions"].get(name) or summary["classes"].get(name)  # type: ignore[union-attr]
                records.append({"name": name, "line": info["line"] if info else 1})
        self._dead[module_key] = records
        return records

    def _referenced_elsewhere(self, module_key: str, name: str) -> bool:
        for other_key, other in self.summaries.items():
            if other_key == module_key:
                continue
            if name in other["refs"]:  # type: ignore[operator]
                return True
            for imported in other["imports"].values():  # type: ignore[union-attr]
                if (
                    imported[0] == "symbol"
                    and imported[1] == module_key
                    and imported[2] == name
                ):
                    return True
        return False

    # ------------------------------------------------------------ cache keys

    def dep_key(self, module_key: str) -> str:
        """Digest of everything outside a module its findings depend on.

        Covers the solved signature of every function the module calls (and
        its own — their expected domains feed call-site checks inside the
        module) plus which of its exports the rest of the project references.
        Unchanged digest + unchanged content ⇒ cached findings stay valid.
        """
        if module_key in self._dep_keys:
            return self._dep_keys[module_key]
        refs: Set[FunctionRef] = set()
        for _, _call, ref, _bound in self._resolved_calls(module_key):
            refs.add(ref)
        summary = self.summaries.get(module_key, {})
        for qualname in summary.get("functions", {}):
            if qualname != "<module>":
                refs.add((module_key, qualname))
        signatures = {}
        for ref in refs:
            info = self._function_info(ref[0], ref[1])
            if info is not None:
                signatures[_ref_key(ref)] = self.env.signature(
                    ref, info["positional"]  # type: ignore[arg-type]
                )
        payload = {
            "signatures": signatures,
            "dead": sorted(record["name"] for record in self.dead_exports(module_key)),  # type: ignore[misc]
            "threads": self.threads().dep_digest(module_key),
            "exceptions": self.exceptions().dep_digest(module_key),
            "lifecycle": self.lifecycle().dep_digest(module_key),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        self._dep_keys[module_key] = digest
        return digest

    # ------------------------------------------------------------ threads

    def threads(self) -> ThreadAnalysis:
        """The race-detection view (roots, domains, locksets), built lazily.

        Derived entirely from the summaries plus :meth:`resolve`, so worker
        projects rehydrated via :meth:`from_dict` rebuild it on demand.
        """
        if self._thread_analysis is None:
            self._thread_analysis = ThreadAnalysis(self.summaries, self.resolve)
        return self._thread_analysis

    def thread_records(self, module_key: str) -> List[Dict[str, object]]:
        """CW7xx finding records anchored in ``module_key``."""
        return self.threads().records_for(module_key)

    # ------------------------------------------------------------ exceptions

    def exceptions(self) -> ExceptionAnalysis:
        """The interprocedural may-raise view, built lazily like threads()."""
        if self._exception_analysis is None:
            self._exception_analysis = ExceptionAnalysis(self.summaries, self.resolve)
        return self._exception_analysis

    def exception_records(self, module_key: str) -> List[Dict[str, object]]:
        """CW803 finding records anchored in ``module_key``."""
        return self.exceptions().records_for(module_key)

    # ------------------------------------------------------------ lifecycle

    def lifecycle(self) -> LifecycleAnalysis:
        """Resource-lifetime + cache-coherence view, built lazily."""
        if self._lifecycle_analysis is None:
            self._lifecycle_analysis = LifecycleAnalysis(
                self.summaries, self.resolve, self.exceptions(), self.threads()
            )
        return self._lifecycle_analysis

    def lifecycle_records(self, module_key: str) -> List[Dict[str, object]]:
        """CW801/802/804/805/806 finding records anchored in ``module_key``."""
        return self.lifecycle().records_for(module_key)


def _ref_key(ref: FunctionRef) -> str:
    return f"{ref[0]}\n{ref[1]}"


def _ref_from_key(key: str) -> FunctionRef:
    module_key, _, qualname = key.partition("\n")
    return (module_key, qualname)
