"""Next-place prediction: interfaces and dataset splitting.

The paper motivates CrowdWeb with the poor accuracy (8–25%) of next-POI
predictors.  This package reproduces that comparison: several predictors
(frequency, Markov, mined-pattern-based, and a from-scratch numpy RNN — the
DBSCAN+RNN baseline of ref [10]) evaluated on the same daily sequences the
miner sees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, Hashable, List, Sequence, Tuple, TypeVar

__all__ = ["NextPlacePredictor", "split_sequences", "prediction_examples"]

Token = TypeVar("Token", bound=Hashable)


class NextPlacePredictor(ABC, Generic[Token]):
    """Predicts the next place token given the day-so-far prefix."""

    name: str = "predictor"

    @abstractmethod
    def fit(self, sequences: Sequence[Sequence[Token]]) -> "NextPlacePredictor[Token]":
        """Train on historical daily sequences.  Returns self for chaining."""

    @abstractmethod
    def predict(self, prefix: Sequence[Token], k: int = 1) -> List[Token]:
        """The ``k`` most likely next tokens, best first (may return fewer)."""


def split_sequences(
    sequences: Sequence[Sequence[Token]], train_frac: float = 0.7
) -> Tuple[List[Sequence[Token]], List[Sequence[Token]]]:
    """Chronological train/test split (sequences must already be in day order).

    Never returns an empty train set when any sequences exist; the test set
    may be empty for tiny inputs.
    """
    if not (0.0 < train_frac < 1.0):
        raise ValueError("train_frac must be in (0, 1)")
    n = len(sequences)
    cut = max(1, int(n * train_frac)) if n else 0
    return list(sequences[:cut]), list(sequences[cut:])


def prediction_examples(
    sequences: Sequence[Sequence[Token]],
) -> List[Tuple[Tuple[Token, ...], Token]]:
    """(prefix, next-token) pairs from every position of every sequence."""
    examples: List[Tuple[Tuple[Token, ...], Token]] = []
    for seq in sequences:
        for i in range(1, len(seq)):
            examples.append((tuple(seq[:i]), seq[i]))
    return examples
