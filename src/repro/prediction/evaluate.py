"""Prediction evaluation harness: accuracy@k over held-out days."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Sequence, Tuple, TypeVar

from .base import NextPlacePredictor, prediction_examples, split_sequences

__all__ = ["PredictionReport", "evaluate_predictor", "compare_predictors"]

Token = TypeVar("Token", bound=Hashable)


@dataclass(frozen=True)
class PredictionReport:
    """Accuracy of one predictor on one user's held-out days."""

    predictor: str
    n_examples: int
    accuracy_at_1: float
    accuracy_at_3: float

    def as_row(self) -> Dict[str, float]:
        return {
            "predictor": self.predictor,
            "n_examples": self.n_examples,
            "acc@1": round(self.accuracy_at_1, 4),
            "acc@3": round(self.accuracy_at_3, 4),
        }


def evaluate_predictor(
    predictor: NextPlacePredictor[Token],
    sequences: Sequence[Sequence[Token]],
    train_frac: float = 0.7,
) -> PredictionReport:
    """Chronological-split evaluation of a single predictor.

    The predictor is fit on the early days and scored on (prefix, next)
    examples from the late days.
    """
    train, test = split_sequences(sequences, train_frac)
    predictor.fit(train)
    examples = prediction_examples(test)
    if not examples:
        return PredictionReport(predictor=predictor.name, n_examples=0,
                                accuracy_at_1=0.0, accuracy_at_3=0.0)
    hit1 = hit3 = 0
    for prefix, actual in examples:
        top3 = predictor.predict(prefix, k=3)
        if top3 and top3[0] == actual:
            hit1 += 1
        if actual in top3:
            hit3 += 1
    n = len(examples)
    return PredictionReport(
        predictor=predictor.name,
        n_examples=n,
        accuracy_at_1=hit1 / n,
        accuracy_at_3=hit3 / n,
    )


def compare_predictors(
    factories: Mapping[str, Callable[[], NextPlacePredictor[Token]]],
    sequences_by_user: Mapping[str, Sequence[Sequence[Token]]],
    train_frac: float = 0.7,
) -> Dict[str, PredictionReport]:
    """Evaluate several predictors over many users; micro-averaged accuracy.

    ``factories`` maps a display name to a zero-arg constructor so each user
    gets a freshly initialized model.
    """
    out: Dict[str, PredictionReport] = {}
    for name, factory in factories.items():
        total = hit1 = hit3 = 0
        for sequences in sequences_by_user.values():
            train, test = split_sequences(sequences, train_frac)
            predictor = factory()
            predictor.fit(train)
            for prefix, actual in prediction_examples(test):
                top3 = predictor.predict(prefix, k=3)
                total += 1
                if top3 and top3[0] == actual:
                    hit1 += 1
                if actual in top3:
                    hit3 += 1
        out[name] = PredictionReport(
            predictor=name,
            n_examples=total,
            accuracy_at_1=hit1 / total if total else 0.0,
            accuracy_at_3=hit3 / total if total else 0.0,
        )
    return out
