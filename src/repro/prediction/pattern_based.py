"""Pattern-based prediction: reuse the mined flexible patterns as a model.

If a user's routine says "Eatery around noon, then Work", then after an
Eatery visit the best guess for what comes next is Work.  This predictor
matches the day-so-far against the user's mined patterns (longest matched
prefix, then support, decides) and falls back to a Markov chain when no
pattern speaks — demonstrating that the artifact CrowdWeb computes for
*visualization* also carries predictive signal.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, Tuple, TypeVar

from ..mining import SequentialPattern
from .base import NextPlacePredictor
from .markov import MarkovPredictor

__all__ = ["PatternBasedPredictor"]

Token = TypeVar("Token", bound=Hashable)


class PatternBasedPredictor(NextPlacePredictor[Token]):
    """Predicts from mined sequential patterns, with Markov backoff.

    Parameters
    ----------
    patterns:
        The user's mined patterns over the same token space as the
        sequences (labels, or (bin, label) items).
    fallback_order:
        Order of the backoff Markov chain trained in :meth:`fit`.
    """

    name = "pattern-based"

    def __init__(
        self,
        patterns: Sequence[SequentialPattern[Token]],
        fallback_order: int = 1,
    ) -> None:
        self.patterns = list(patterns)
        self._fallback: MarkovPredictor[Token] = MarkovPredictor(order=fallback_order)

    def fit(self, sequences: Sequence[Sequence[Token]]) -> "PatternBasedPredictor[Token]":
        self._fallback.fit(sequences)
        return self

    @staticmethod
    def _matched_prefix_len(pattern_items: Tuple[Token, ...], prefix: Sequence[Token]) -> int:
        """How many leading pattern items occur (in order) in ``prefix``."""
        matched = 0
        it = iter(prefix)
        for item in pattern_items:
            if any(item == tok for tok in it):
                matched += 1
            else:
                break
        return matched

    def predict(self, prefix: Sequence[Token], k: int = 1) -> List[Token]:
        if k < 1:
            raise ValueError("k must be >= 1")
        # Score each pattern's *next* item by (matched prefix length, support).
        scored: List[Tuple[int, float, Token]] = []
        for pattern in self.patterns:
            matched = self._matched_prefix_len(pattern.items, prefix)
            if matched < len(pattern.items):
                next_token = pattern.items[matched]
                # Require at least one matched item unless the pattern is a
                # single item (then it is a prior over likely places).
                if matched > 0 or len(pattern.items) == 1:
                    scored.append((matched, pattern.support, next_token))
        scored.sort(key=lambda s: (-s[0], -s[1], repr(s[2])))
        ranked: List[Token] = []
        seen: Set[Token] = set()
        for _, _, token in scored:
            if token not in seen:
                seen.add(token)
                ranked.append(token)
                if len(ranked) == k:
                    return ranked
        for token in self._fallback.predict(prefix, k=k + len(ranked)):
            if token not in seen:
                seen.add(token)
                ranked.append(token)
                if len(ranked) == k:
                    break
        return ranked[:k]
