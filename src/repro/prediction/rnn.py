"""A from-scratch numpy Elman RNN for next-place prediction.

Reproduces the deep-learning baseline family the paper cites (ref [10],
"human mobility prediction based on DBSCAN and RNN") without any DL
framework: one-hot tokens → embedding → tanh recurrent layer → softmax,
trained with truncated BPTT and plain SGD.  Deliberately small — the point
the paper makes is that such models top out at modest accuracy on sparse
check-in data, and a compact RNN reproduces that behaviour faithfully.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, TypeVar

import numpy as np

from .base import NextPlacePredictor

__all__ = ["RNNPredictor"]

Token = TypeVar("Token", bound=Hashable)


class RNNPredictor(NextPlacePredictor[Token]):
    """Elman RNN language model over place tokens.

    Parameters
    ----------
    hidden_size:
        Recurrent state width.
    embed_size:
        Token embedding width.
    epochs / learning_rate:
        SGD schedule; the learning rate decays linearly to 10% by the last
        epoch.
    seed:
        Initialization seed — training is fully deterministic.
    """

    name = "rnn"

    def __init__(
        self,
        hidden_size: int = 32,
        embed_size: int = 16,
        epochs: int = 30,
        learning_rate: float = 0.1,
        clip: float = 5.0,
        seed: int = 0,
    ) -> None:
        if hidden_size < 1 or embed_size < 1 or epochs < 1:
            raise ValueError("hidden_size, embed_size and epochs must be >= 1")
        self.hidden_size = hidden_size
        self.embed_size = embed_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.clip = clip
        self.seed = seed
        self._vocab: List[Token] = []
        self._index: Dict[Token, int] = {}

    # ------------------------------------------------------------- training

    def fit(self, sequences: Sequence[Sequence[Token]]) -> "RNNPredictor[Token]":
        rng = np.random.default_rng(self.seed)
        tokens = sorted({t for seq in sequences for t in seq}, key=repr)
        self._vocab = tokens
        self._index = {t: i for i, t in enumerate(tokens)}
        v, e, h = len(tokens), self.embed_size, self.hidden_size
        if v == 0:
            return self

        scale = 0.1
        self.E = rng.normal(0.0, scale, (v, e))      # embedding
        self.Wxh = rng.normal(0.0, scale, (e, h))
        self.Whh = rng.normal(0.0, scale, (h, h))
        self.bh = np.zeros(h)
        self.Why = rng.normal(0.0, scale, (h, v))
        self.by = np.zeros(v)

        encoded = [
            np.array([self._index[t] for t in seq], dtype=int)
            for seq in sequences
            if len(seq) >= 2
        ]
        if not encoded:
            return self

        for epoch in range(self.epochs):
            lr = self.learning_rate * (1.0 - 0.9 * epoch / max(1, self.epochs - 1))
            order = rng.permutation(len(encoded))
            for seq_idx in order:
                self._train_sequence(encoded[seq_idx], lr)
        return self

    def _train_sequence(self, ids: np.ndarray, lr: float) -> None:
        """One full-sequence BPTT step."""
        T = len(ids) - 1
        h_states = np.zeros((T + 1, self.hidden_size))
        x_embeds = np.zeros((T, self.embed_size))
        probs = np.zeros((T, len(self._vocab)))

        # Forward.
        for t in range(T):
            x_embeds[t] = self.E[ids[t]]
            raw = x_embeds[t] @ self.Wxh + h_states[t] @ self.Whh + self.bh
            h_states[t + 1] = np.tanh(raw)
            logits = h_states[t + 1] @ self.Why + self.by
            logits -= logits.max()
            exp = np.exp(logits)
            probs[t] = exp / exp.sum()

        # Backward.
        dE = np.zeros_like(self.E)
        dWxh = np.zeros_like(self.Wxh)
        dWhh = np.zeros_like(self.Whh)
        dbh = np.zeros_like(self.bh)
        dWhy = np.zeros_like(self.Why)
        dby = np.zeros_like(self.by)
        dh_next = np.zeros(self.hidden_size)
        for t in range(T - 1, -1, -1):
            dy = probs[t].copy()
            dy[ids[t + 1]] -= 1.0
            dWhy += np.outer(h_states[t + 1], dy)
            dby += dy
            dh = self.Why @ dy + dh_next
            draw = (1.0 - h_states[t + 1] ** 2) * dh
            dWxh += np.outer(x_embeds[t], draw)
            dWhh += np.outer(h_states[t], draw)
            dbh += draw
            dE[ids[t]] += self.Wxh @ draw
            dh_next = self.Whh @ draw

        for grad, param in (
            (dE, self.E), (dWxh, self.Wxh), (dWhh, self.Whh),
            (dbh, self.bh), (dWhy, self.Why), (dby, self.by),
        ):
            np.clip(grad, -self.clip, self.clip, out=grad)
            param -= lr * grad / max(1, T)

    # ------------------------------------------------------------ inference

    def predict(self, prefix: Sequence[Token], k: int = 1) -> List[Token]:
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self._vocab:
            return []
        h = np.zeros(self.hidden_size)
        saw_known = False
        for token in prefix:
            idx = self._index.get(token)
            if idx is None:
                continue  # unseen token: skip (the RNN has no embedding for it)
            saw_known = True
            h = np.tanh(self.E[idx] @ self.Wxh + h @ self.Whh + self.bh)
        if not saw_known:
            # No usable context: fall back to the output bias (unigram-ish).
            logits = self.by
        else:
            logits = h @ self.Why + self.by
        top = np.argsort(-logits)[:k]
        return [self._vocab[i] for i in top]
