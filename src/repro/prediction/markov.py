"""Markov-chain next-place predictors with backoff."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

from .base import NextPlacePredictor
from .frequency import FrequencyPredictor

__all__ = ["MarkovPredictor"]

Token = TypeVar("Token", bound=Hashable)


class MarkovPredictor(NextPlacePredictor[Token]):
    """Order-``n`` Markov chain over place tokens.

    Transition counts are learned per context (the last ``n`` tokens); at
    prediction time unseen contexts back off to progressively shorter
    contexts and finally to global frequency — so the predictor always has
    an answer.
    """

    def __init__(self, order: int = 1) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.name = f"markov-{order}"
        # context length -> context tuple -> next-token counts
        self._tables: Dict[int, Dict[Tuple[Token, ...], Counter]] = {}
        self._fallback: FrequencyPredictor[Token] = FrequencyPredictor()

    def fit(self, sequences: Sequence[Sequence[Token]]) -> "MarkovPredictor[Token]":
        self._tables = {length: defaultdict(Counter) for length in range(1, self.order + 1)}
        for seq in sequences:
            for i in range(1, len(seq)):
                for length in range(1, self.order + 1):
                    if i - length < 0:
                        break
                    context = tuple(seq[i - length:i])
                    self._tables[length][context][seq[i]] += 1
        self._fallback.fit(sequences)
        return self

    def predict(self, prefix: Sequence[Token], k: int = 1) -> List[Token]:
        if k < 1:
            raise ValueError("k must be >= 1")
        ranked: List[Token] = []
        seen: Set[Token] = set()
        # Longest matching context first, then shorter, then global frequency.
        for length in range(min(self.order, len(prefix)), 0, -1):
            context = tuple(prefix[-length:])
            counts = self._tables.get(length, {}).get(context)
            if not counts:
                continue
            for token, _ in sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))):
                if token not in seen:
                    seen.add(token)
                    ranked.append(token)
                    if len(ranked) == k:
                        return ranked
        for token in self._fallback.predict(prefix, k=k + len(ranked)):
            if token not in seen:
                seen.add(token)
                ranked.append(token)
                if len(ranked) == k:
                    break
        return ranked[:k]
