"""Next-place prediction baselines and evaluation."""

from .base import NextPlacePredictor, prediction_examples, split_sequences
from .dbscan_rnn import DBSCANRNNConfig, DBSCANRNNPipeline
from .evaluate import PredictionReport, compare_predictors, evaluate_predictor
from .frequency import FrequencyPredictor
from .markov import MarkovPredictor
from .pattern_based import PatternBasedPredictor
from .rnn import RNNPredictor

__all__ = [
    "DBSCANRNNConfig",
    "DBSCANRNNPipeline",
    "FrequencyPredictor",
    "MarkovPredictor",
    "NextPlacePredictor",
    "PatternBasedPredictor",
    "PredictionReport",
    "RNNPredictor",
    "compare_predictors",
    "evaluate_predictor",
    "prediction_examples",
    "split_sequences",
]
