"""Frequency baseline: always predict the globally most common places."""

from __future__ import annotations

from collections import Counter
from typing import Hashable, List, Sequence, TypeVar

from .base import NextPlacePredictor

__all__ = ["FrequencyPredictor"]

Token = TypeVar("Token", bound=Hashable)


class FrequencyPredictor(NextPlacePredictor[Token]):
    """Predicts the most frequent tokens of the training data, always.

    The floor every real model must beat; on highly routinized users it is
    embarrassingly strong, which is part of the paper's point about
    regularity.
    """

    name = "frequency"

    def __init__(self) -> None:
        self._ranked: List[Token] = []

    def fit(self, sequences: Sequence[Sequence[Token]]) -> "FrequencyPredictor[Token]":
        counts: Counter = Counter()
        for seq in sequences:
            counts.update(seq)
        self._ranked = [token for token, _ in
                        sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))]
        return self

    def predict(self, prefix: Sequence[Token], k: int = 1) -> List[Token]:
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._ranked[:k]
