"""The DBSCAN+RNN next-location pipeline (paper ref [10]), end to end.

Zhang et al.'s baseline consumes raw GPS traces: stay points are extracted
per day, pooled and clustered with DBSCAN into *significant places*, each
day becomes a sequence of place tokens, and an RNN predicts the next place.
This module wires those stages together from this library's own substrates
(:mod:`repro.sequences.staypoints`, :mod:`repro.geo.dbscan`,
:mod:`repro.prediction.rnn`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date as date_type
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..geo import GeoPoint, NOISE, dbscan
from ..sequences.staypoints import Fix, StayPoint, detect_stay_points
from .base import NextPlacePredictor, prediction_examples, split_sequences
from .evaluate import PredictionReport
from .markov import MarkovPredictor
from .rnn import RNNPredictor

__all__ = ["DBSCANRNNConfig", "DBSCANRNNPipeline"]


@dataclass(frozen=True)
class DBSCANRNNConfig:
    """Stage parameters (defaults sized for walking-scale city traces)."""

    stay_distance_m: float = 150.0
    stay_duration_s: float = 15 * 60.0
    cluster_eps_m: float = 250.0
    cluster_min_samples: int = 3
    rnn_hidden: int = 32
    rnn_embed: int = 16
    rnn_epochs: int = 25
    seed: int = 0


class DBSCANRNNPipeline:
    """Trace → stay points → DBSCAN places → RNN sequence model.

    ``fit`` consumes ``{day: [fixes]}``; afterwards :meth:`predict_next`
    maps a partial day's fixes to the most likely next place cluster, and
    :meth:`evaluate` scores held-out days.
    """

    def __init__(self, config: DBSCANRNNConfig = DBSCANRNNConfig()) -> None:
        self.config = config
        self.cluster_centers: List[GeoPoint] = []
        self._day_sequences: Dict[date_type, List[int]] = {}
        self._model: Optional[NextPlacePredictor[int]] = None

    # ------------------------------------------------------------ plumbing

    def _stays_per_day(
        self, traces: Mapping[date_type, Sequence[Fix]]
    ) -> Dict[date_type, List[StayPoint]]:
        return {
            day: detect_stay_points(
                list(fixes), self.config.stay_distance_m, self.config.stay_duration_s
            )
            for day, fixes in traces.items()
        }

    def _assign_cluster(self, point: GeoPoint) -> Optional[int]:
        """Nearest significant place within the clustering radius, else None."""
        best: Optional[Tuple[float, int]] = None
        for i, center in enumerate(self.cluster_centers):
            d = point.fast_distance_to(center)
            if best is None or d < best[0]:
                best = (d, i)
        if best is None or best[0] > 2 * self.config.cluster_eps_m:
            return None
        return best[1]

    # ------------------------------------------------------------ training

    def fit(self, traces: Mapping[date_type, Sequence[Fix]]) -> "DBSCANRNNPipeline":
        stays_by_day = self._stays_per_day(traces)
        all_stays = [s for stays in stays_by_day.values() for s in stays]
        if not all_stays:
            raise ValueError("no stay points detected; check trace density/thresholds")

        labels = dbscan(
            [s.location for s in all_stays],
            eps_m=self.config.cluster_eps_m,
            min_samples=self.config.cluster_min_samples,
        ).labels
        # Cluster centers = mean of member stay points.
        from collections import defaultdict

        members: Dict[int, List[GeoPoint]] = defaultdict(list)
        for stay, label in zip(all_stays, labels):
            if label != NOISE:
                members[label].append(stay.location)
        from ..geo import centroid

        self.cluster_centers = [
            centroid(points) for _, points in sorted(members.items())
        ]
        if not self.cluster_centers:
            raise ValueError("DBSCAN found no significant places; lower min_samples")

        # Tokenize each day (noise stays snap to the nearest center).
        self._day_sequences = {}
        for day in sorted(stays_by_day):
            tokens: List[int] = []
            for stay in stays_by_day[day]:
                token = self._assign_cluster(stay.location)
                if token is not None and (not tokens or tokens[-1] != token):
                    tokens.append(token)
            if len(tokens) >= 1:
                self._day_sequences[day] = tokens

        sequences = [self._day_sequences[d] for d in sorted(self._day_sequences)]
        self._model = RNNPredictor(
            hidden_size=self.config.rnn_hidden,
            embed_size=self.config.rnn_embed,
            epochs=self.config.rnn_epochs,
            seed=self.config.seed,
        ).fit([seq for seq in sequences if len(seq) >= 2])
        return self

    @property
    def n_places(self) -> int:
        return len(self.cluster_centers)

    @property
    def day_sequences(self) -> Dict[date_type, List[int]]:
        return dict(self._day_sequences)

    # ----------------------------------------------------------- inference

    def tokenize_fixes(self, fixes: Sequence[Fix]) -> List[int]:
        """A (possibly partial) day of fixes → place-token sequence."""
        if self._model is None:
            raise RuntimeError("pipeline is not fitted")
        stays = detect_stay_points(
            list(fixes), self.config.stay_distance_m, self.config.stay_duration_s
        )
        tokens: List[int] = []
        for stay in stays:
            token = self._assign_cluster(stay.location)
            if token is not None and (not tokens or tokens[-1] != token):
                tokens.append(token)
        return tokens

    def predict_next(self, fixes_so_far: Sequence[Fix], k: int = 1) -> List[GeoPoint]:
        """The ``k`` most likely next places, as cluster centers."""
        if self._model is None:
            raise RuntimeError("pipeline is not fitted")
        prefix = self.tokenize_fixes(fixes_so_far)
        tokens = self._model.predict(prefix, k=k)
        return [self.cluster_centers[t] for t in tokens]

    # ---------------------------------------------------------- evaluation

    def evaluate(
        self, traces: Mapping[date_type, Sequence[Fix]], compare_markov: bool = True
    ) -> Dict[str, PredictionReport]:
        """Accuracy on held-out daily traces (token-level, acc@1/@3).

        ``traces`` must be disjoint from the training days.  When
        ``compare_markov`` is set, an order-1 Markov chain trained on the
        same tokens is scored too (the classic sanity comparison).
        """
        if self._model is None:
            raise RuntimeError("pipeline is not fitted")
        test_sequences = []
        for day in sorted(traces):
            tokens = self.tokenize_fixes(traces[day])
            if len(tokens) >= 2:
                test_sequences.append(tokens)
        reports: Dict[str, PredictionReport] = {}
        train_sequences = [self._day_sequences[d] for d in sorted(self._day_sequences)]

        contenders: Dict[str, NextPlacePredictor[int]] = {"dbscan-rnn": self._model}
        if compare_markov:
            contenders["dbscan-markov"] = MarkovPredictor(1).fit(train_sequences)

        examples = prediction_examples(test_sequences)
        for name, model in contenders.items():
            hit1 = hit3 = 0
            for prefix, actual in examples:
                top3 = model.predict(prefix, k=3)
                hit1 += bool(top3 and top3[0] == actual)
                hit3 += actual in top3
            n = len(examples)
            reports[name] = PredictionReport(
                predictor=name,
                n_examples=n,
                accuracy_at_1=hit1 / n if n else 0.0,
                accuracy_at_3=hit3 / n if n else 0.0,
            )
        return reports
