"""Execution backends: serial or multi-process fan-out with ordered merge.

Phase 2 of the pipeline mines every user independently and phase 3 renders
every time window independently — both are embarrassingly parallel.  This
package is the one place that knows how to fan such per-item work out over
a :class:`concurrent.futures.ProcessPoolExecutor` while keeping the output
*deterministic*: results are always merged back in input order, so the
process backend is output-identical to the serial one.

The package sits below every analytics layer (it imports nothing from the
rest of ``repro``); callers pass an :class:`ExecConfig` down from
:class:`repro.pipeline.PipelineConfig` or the CLI's ``--workers`` flag.
"""

from .config import BACKENDS, ExecConfig
from .pool import ordered_map

__all__ = ["BACKENDS", "ExecConfig", "ordered_map"]
