"""Deterministic parallel map over a process pool.

``ordered_map`` is the execution layer's single primitive: apply a picklable
function to every item and return the results *in input order*, regardless
of which worker finished first.  Because each item is processed
independently and the merge is ordered, the process backend is
output-identical to the serial one — the parity suite asserts this for the
mining fan-out.

When observability is on (:mod:`repro.obs`), every call is wrapped in an
``exec.ordered_map`` span and each task's latency lands in the
``repro_exec_task_latency_s`` histogram; the process backend measures task
time *inside* the worker (the wrapper returns ``(elapsed, result)`` pairs,
unwrapped at the parent), so pickling overhead is visible as the gap between
summed task time and wall clock — surfaced as the
``repro_exec_worker_utilization_ratio`` gauge.  With observability off the
code path is byte-identical to the uninstrumented original.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

from ..obs import get_observer
from .config import ExecConfig

__all__ = ["ordered_map"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: The function being mapped, installed into each worker process by the
#: pool initializer so it (and any shared context bound into a partial) is
#: pickled once per worker instead of once per chunk.
_worker_fn: Optional[Callable] = None


def _install_worker_fn(fn: Callable) -> None:
    global _worker_fn
    _worker_fn = fn


def _apply_worker_fn(item):
    assert _worker_fn is not None, "worker pool used before initialization"
    return _worker_fn(item)


def _timed_call(fn: Callable[[ItemT], ResultT], item: ItemT) -> Tuple[float, ResultT]:
    """Apply ``fn`` and return ``(elapsed_seconds, result)``.

    Module-level so the process backend can ship it as a partial; the
    timing happens wherever the work happens (worker process included).
    """
    start = time.perf_counter()
    result = fn(item)
    return time.perf_counter() - start, result


def _consume_map(
    pool: ProcessPoolExecutor, fn: Callable, items: List, chunk_size: int
) -> List:
    """Drain ``pool.map`` in order, cancelling queued chunks on failure.

    Without this, the ``with`` block's ``shutdown(wait=True)`` finishes
    every queued chunk before the worker's exception re-raises — at real
    scale that is minutes of doomed work after the first failure.
    """
    try:
        return list(pool.map(fn, items, chunksize=chunk_size))
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise


def _task_label(fn: Callable, label: str) -> str:
    if label:
        return label
    return getattr(getattr(fn, "func", fn), "__name__", "task")


def ordered_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    config: ExecConfig = ExecConfig(),
    label: str = "",
) -> List[ResultT]:
    """Apply ``fn`` to every item, returning results in input order.

    The serial backend (or a resolved worker count of one) simply loops
    in-process.  The process backend requires ``fn`` and the items to be
    picklable: pass a module-level function, or a ``functools.partial`` of
    one carrying the shared read-only context — it is shipped once per
    worker via the pool initializer, so only the items and results cross
    the process boundary per chunk.

    ``label`` names the task family in observability output (metric labels,
    span attributes); it defaults to the mapped function's name and has no
    effect when observability is off.
    """
    items = list(items)
    workers = config.resolve_workers(len(items))
    observer = get_observer()
    if not observer.enabled:
        if workers <= 1:
            return [fn(item) for item in items]
        chunk_size = config.resolve_chunk_size(len(items), workers)
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_install_worker_fn, initargs=(fn,)
        ) as pool:
            # Executor.map preserves submission order, which is all the
            # determinism guarantee needs.
            return _consume_map(pool, _apply_worker_fn, items, chunk_size)

    # Observed path: identical work and merge order; each task additionally
    # reports its own latency through a (elapsed, result) wrapper.
    name = _task_label(fn, label)
    with observer.span(
        "exec.ordered_map", label=name, n_items=len(items), workers=workers,
        backend=config.backend if workers > 1 else "serial",
    ) as span:
        wall0 = time.perf_counter()
        timed_fn = partial(_timed_call, fn)
        if workers <= 1:
            timed = [timed_fn(item) for item in items]
        else:
            chunk_size = config.resolve_chunk_size(len(items), workers)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_install_worker_fn,
                initargs=(timed_fn,),
            ) as pool:
                timed = _consume_map(pool, _apply_worker_fn, items, chunk_size)
        wall_s = time.perf_counter() - wall0

        busy_s = 0.0
        results: List[ResultT] = []
        for task_s, result in timed:
            busy_s += task_s
            observer.observe("repro_exec_task_latency_s", task_s, label=name)
            results.append(result)
        utilization = busy_s / (workers * wall_s) if wall_s > 0 else 0.0
        observer.inc("repro_exec_tasks_total", len(items), label=name)
        observer.set_gauge(
            "repro_exec_worker_utilization_ratio", round(utilization, 4), label=name
        )
        span.set("utilization", round(utilization, 4))
    return results
