"""Deterministic parallel map over a process pool.

``ordered_map`` is the execution layer's single primitive: apply a picklable
function to every item and return the results *in input order*, regardless
of which worker finished first.  Because each item is processed
independently and the merge is ordered, the process backend is
output-identical to the serial one — the parity suite asserts this for the
mining fan-out.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from .config import ExecConfig

__all__ = ["ordered_map"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: The function being mapped, installed into each worker process by the
#: pool initializer so it (and any shared context bound into a partial) is
#: pickled once per worker instead of once per chunk.
_worker_fn: Optional[Callable] = None


def _install_worker_fn(fn: Callable) -> None:
    global _worker_fn
    _worker_fn = fn


def _apply_worker_fn(item):
    assert _worker_fn is not None, "worker pool used before initialization"
    return _worker_fn(item)


def ordered_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    config: ExecConfig = ExecConfig(),
) -> List[ResultT]:
    """Apply ``fn`` to every item, returning results in input order.

    The serial backend (or a resolved worker count of one) simply loops
    in-process.  The process backend requires ``fn`` and the items to be
    picklable: pass a module-level function, or a ``functools.partial`` of
    one carrying the shared read-only context — it is shipped once per
    worker via the pool initializer, so only the items and results cross
    the process boundary per chunk.
    """
    items = list(items)
    workers = config.resolve_workers(len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    chunk_size = config.resolve_chunk_size(len(items), workers)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_install_worker_fn, initargs=(fn,)
    ) as pool:
        # Executor.map preserves submission order, which is all the
        # determinism guarantee needs.
        return list(pool.map(_apply_worker_fn, items, chunksize=chunk_size))
