"""The execution-layer configuration knob."""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BACKENDS", "ExecConfig"]

#: Supported execution backends.
BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ExecConfig:
    """How per-item work (per-user mining, per-window snapshots) executes.

    Parameters
    ----------
    backend:
        ``"serial"`` runs in-process (the default — zero overhead, exact
        legacy behaviour); ``"process"`` fans items out over a
        ``ProcessPoolExecutor`` with a deterministic ordered merge.
    n_workers:
        Worker-process count for the process backend; ``0`` means
        ``os.cpu_count()``.  A resolved count of one falls back to the
        serial path (a single worker would only add pickling overhead).
    chunk_size:
        Items per pickled work unit; ``0`` picks a chunk that gives each
        worker a handful of chunks (amortizes argument pickling while
        keeping the pool load-balanced).
    """

    backend: str = "serial"
    n_workers: int = 0
    chunk_size: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown exec backend {self.backend!r} (expected one of {BACKENDS})"
            )
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative (0 = all cores)")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be non-negative (0 = auto)")

    @property
    def parallel(self) -> bool:
        """Could this config ever use more than one process?"""
        return self.backend == "process" and self.n_workers != 1

    def resolve_workers(self, n_items: int) -> int:
        """Effective worker count for ``n_items`` work items."""
        if self.backend == "serial" or n_items <= 1:
            return 1
        workers = self.n_workers or (os.cpu_count() or 1)
        return max(1, min(workers, n_items))

    def resolve_chunk_size(self, n_items: int, n_workers: int) -> int:
        """Effective chunk size: explicit, or ~4 chunks per worker."""
        if self.chunk_size:
            return self.chunk_size
        return max(1, -(-n_items // (n_workers * 4)))

    @classmethod
    def from_workers(cls, workers: int) -> "ExecConfig":
        """The config a ``--workers N`` CLI flag means: ``1`` stays serial,
        ``0`` uses every core, ``N > 1`` uses ``N`` worker processes."""
        if workers == 1:
            return cls()
        return cls(backend="process", n_workers=workers)
