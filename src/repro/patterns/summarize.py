"""Plain-language summaries of detected patterns.

The demo booth pitch of the paper is "select a user, see their routine".
These helpers render a profile as readable sentences for the CLI, the web
UI's user page, and the examples.
"""

from __future__ import annotations

from typing import List

from ..mining import SequentialPattern
from ..sequences import TimedItem
from .model import UserPatternProfile

__all__ = ["describe_pattern", "summarize_profile"]


def describe_pattern(pattern: SequentialPattern, profile: UserPatternProfile) -> str:
    """One pattern as a sentence, e.g.
    ``"Eatery around 12:00-13:00, then Work around 14:00-15:00 — on 74% of days (56/76)"``.
    """
    steps = []
    for item in pattern.items:
        steps.append(f"{item.label} around {profile.binning.label(item.bin)}")
    route = ", then ".join(steps)
    return f"{route} — on {pattern.support:.0%} of days ({pattern.count}/{profile.n_days})"


def summarize_profile(profile: UserPatternProfile, k: int = 8) -> str:
    """A multi-line textual summary of a user's routine."""
    lines: List[str] = [
        f"User {profile.user_id}: {profile.n_patterns} patterns over "
        f"{profile.n_days} recorded days "
        f"(abstraction: {profile.level.value}, bins: {profile.binning.width_hours:g}h)"
    ]
    if not profile.patterns:
        lines.append("  no routine detected — not enough regular check-ins")
        return "\n".join(lines)
    for pattern in profile.top(k):
        lines.append(f"  - {describe_pattern(pattern, profile)}")
    remaining = profile.n_patterns - k
    if remaining > 0:
        lines.append(f"  … and {remaining} more")
    return "\n".join(lines)
