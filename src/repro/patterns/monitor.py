"""Online routine conformance: match a day-in-progress against patterns.

The crowd-management applications the paper motivates need more than
retrospective mining — they need to know, *as the day unfolds*, whether a
user is following their routine, what they are expected to do next, and
when a routine has been missed.  ``PatternMonitor`` consumes today's visits
one at a time and tracks each mined pattern through the states

``pending`` → ``in_progress`` → ``completed``  (or → ``missed`` once the
pattern's next time bin has passed beyond tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..mining import SequentialPattern
from ..sequences import TimedItem
from .model import UserPatternProfile

__all__ = ["PatternState", "PatternProgress", "PatternMonitor"]


class PatternState(Enum):
    PENDING = "pending"          # nothing matched yet, first bin still ahead
    IN_PROGRESS = "in_progress"  # some items matched, next one still possible
    COMPLETED = "completed"      # every item matched
    MISSED = "missed"            # an unmatched item's bin has passed


@dataclass(frozen=True)
class PatternProgress:
    """Where one pattern stands right now."""

    pattern: SequentialPattern[TimedItem]
    matched: int  # leading items already observed
    state: PatternState

    @property
    def next_item(self) -> Optional[TimedItem]:
        if self.matched < len(self.pattern.items):
            return self.pattern.items[self.matched]
        return None


class PatternMonitor:
    """Tracks one user's day against their mined patterns.

    Parameters
    ----------
    profile:
        The user's mined pattern profile.
    tolerance_bins:
        Bin slack in both directions: an observed visit at bin ``b`` matches
        a pattern item at ``b ± tolerance``, and an item only becomes
        *missed* once the current bin exceeds ``item.bin + tolerance``.
    """

    def __init__(self, profile: UserPatternProfile, tolerance_bins: int = 1) -> None:
        if tolerance_bins < 0:
            raise ValueError("tolerance must be non-negative")
        self.profile = profile
        self.tolerance_bins = tolerance_bins
        self._matched: Dict[int, int] = {i: 0 for i in range(len(profile.patterns))}
        self._current_bin: Optional[int] = None
        self._observations: List[TimedItem] = []

    # ------------------------------------------------------------ feeding

    def observe(self, item: TimedItem) -> None:
        """Feed one visit (bins must be non-decreasing within the day)."""
        if self._current_bin is not None and item.bin < self._current_bin:
            raise ValueError(
                f"observations must be chronological (got bin {item.bin} "
                f"after {self._current_bin})"
            )
        self._current_bin = item.bin
        self._observations.append(item)
        for index, pattern in enumerate(self.profile.patterns):
            matched = self._matched[index]
            if matched >= len(pattern.items):
                continue
            expected = pattern.items[matched]
            if expected.label == item.label and abs(expected.bin - item.bin) <= self.tolerance_bins:
                self._matched[index] = matched + 1

    def observe_all(self, items: Sequence[TimedItem]) -> None:
        for item in items:
            self.observe(item)

    def advance_to(self, bin_index: int) -> None:
        """Move the clock forward without a visit (time passing)."""
        if self._current_bin is not None and bin_index < self._current_bin:
            raise ValueError("the clock cannot move backwards")
        self._current_bin = bin_index

    # ------------------------------------------------------------- status

    def _state_of(self, index: int) -> PatternState:
        pattern = self.profile.patterns[index]
        matched = self._matched[index]
        if matched >= len(pattern.items):
            return PatternState.COMPLETED
        next_item = pattern.items[matched]
        if self._current_bin is not None and self._current_bin > next_item.bin + self.tolerance_bins:
            return PatternState.MISSED
        if matched > 0:
            return PatternState.IN_PROGRESS
        return PatternState.PENDING

    def status(self) -> List[PatternProgress]:
        """Progress of every pattern, in profile (canonical) order."""
        return [
            PatternProgress(
                pattern=pattern,
                matched=self._matched[i],
                state=self._state_of(i),
            )
            for i, pattern in enumerate(self.profile.patterns)
        ]

    def expected_next(self) -> List[Tuple[TimedItem, SequentialPattern[TimedItem]]]:
        """Upcoming items of live (pending/in-progress) patterns, soonest
        first, strongest support breaking ties."""
        upcoming = []
        for progress in self.status():
            if progress.state in (PatternState.PENDING, PatternState.IN_PROGRESS):
                item = progress.next_item
                if item is not None:
                    upcoming.append((item, progress.pattern))
        upcoming.sort(key=lambda pair: (pair[0].bin, -pair[1].support, pair[0].label))
        return upcoming

    def conformance(self) -> float:
        """Support-weighted share of non-missed patterns in [0, 1].

        1.0 while the user is on script; drops as strong patterns get
        missed.  Empty profiles count as fully conformant (nothing to miss).
        """
        total = sum(p.support for p in self.profile.patterns)
        if total == 0:
            return 1.0
        live = sum(
            progress.pattern.support
            for progress in self.status()
            if progress.state is not PatternState.MISSED
        )
        return live / total

    @property
    def current_bin(self) -> Optional[int]:
        return self._current_bin

    @property
    def observations(self) -> Tuple[TimedItem, ...]:
        return tuple(self._observations)
