"""Individual mobility patterns: profiles, graphs, similarity, summaries."""

from .graph import build_pattern_graph, build_place_graph, place_importance, top_transitions
from .model import UserPatternProfile, detect_all_patterns, detect_user_patterns
from .monitor import PatternMonitor, PatternProgress, PatternState
from .similarity import (
    jaccard_similarity,
    pattern_set_similarity,
    profile_similarity_matrix,
    sequence_edit_similarity,
)
from .summarize import describe_pattern, summarize_profile

__all__ = [
    "PatternMonitor",
    "PatternProgress",
    "PatternState",
    "UserPatternProfile",
    "build_pattern_graph",
    "build_place_graph",
    "describe_pattern",
    "detect_all_patterns",
    "detect_user_patterns",
    "jaccard_similarity",
    "pattern_set_similarity",
    "place_importance",
    "profile_similarity_matrix",
    "sequence_edit_similarity",
    "summarize_profile",
    "top_transitions",
]
