"""Per-user mobility-pattern profiles — phase 2 of the framework.

A :class:`UserPatternProfile` bundles everything the platform knows about
one user: their daily-sequence database, the flexible patterns mined from
it, and the binning that gives pattern items their clock meaning.  This is
the unit the crowd layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.records import CheckInDataset
from ..exec import ExecConfig, ordered_map
from ..mining import (
    ModifiedPrefixSpanConfig,
    SequentialPattern,
    closed_patterns,
    modified_prefixspan,
)
from ..obs import get_observer
from ..sequences import (
    SequenceDatabase,
    TimeBinning,
    TimedItem,
    build_all_databases,
    build_user_database,
    HOURLY,
)
from ..taxonomy import AbstractionLevel, CategoryTree

__all__ = ["UserPatternProfile", "detect_user_patterns", "detect_all_patterns"]


@dataclass
class UserPatternProfile:
    """One user's detected mobility patterns."""

    user_id: str
    patterns: Tuple[SequentialPattern[TimedItem], ...]
    n_days: int
    binning: TimeBinning = field(default_factory=lambda: HOURLY)
    level: AbstractionLevel = AbstractionLevel.ROOT

    def __post_init__(self) -> None:
        self.patterns = tuple(self.patterns)

    @property
    def n_patterns(self) -> int:
        return len(self.patterns)

    def top(self, k: int = 10) -> List[SequentialPattern[TimedItem]]:
        """The ``k`` strongest patterns (input order is already canonical)."""
        return list(self.patterns[:k])

    def labels(self) -> List[str]:
        """All place labels appearing in any pattern, sorted."""
        return sorted({item.label for p in self.patterns for item in p.items})

    def items_at_bin(self, bin_index: int, tolerance: int = 0) -> List[Tuple[TimedItem, SequentialPattern]]:
        """Pattern items active at a time bin (within ``tolerance`` bins).

        This is the crowd layer's core query: "where does this user's
        routine put them at 9 am?".
        """
        n_bins = self.binning.n_bins
        hits = []
        for pattern in self.patterns:
            for item in pattern.items:
                d = abs(item.bin - bin_index)
                if min(d, n_bins - d) <= tolerance:
                    hits.append((item, pattern))
        return hits

    def strongest_label_at_bin(self, bin_index: int, tolerance: int = 0) -> Optional[str]:
        """The best-supported place label at a bin, or ``None``."""
        best: Optional[Tuple[float, str]] = None
        for item, pattern in self.items_at_bin(bin_index, tolerance):
            key = (pattern.support, item.label)
            if best is None or key > best:
                best = key
        return best[1] if best else None

    def to_dict(self) -> Dict:
        """JSON-ready representation (used by the web API)."""
        return {
            "user_id": self.user_id,
            "n_days": self.n_days,
            "level": self.level.value,
            "bin_width_hours": self.binning.width_hours,
            "patterns": [
                {
                    "items": [
                        {"bin": item.bin, "time": self.binning.label(item.bin), "label": item.label}
                        for item in p.items
                    ],
                    "support": round(p.support, 4),
                    "count": p.count,
                }
                for p in self.patterns
            ],
        }


def detect_user_patterns(
    dataset: CheckInDataset,
    user_id: str,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    closed_only: bool = True,
    day_kind: str = "all",
) -> UserPatternProfile:
    """Detect one user's mobility patterns (the paper's phase 2).

    Builds the user's daily-sequence database at the chosen abstraction
    level, runs the modified PrefixSpan, and (by default) reduces the output
    to closed patterns.  ``day_kind`` ("all"/"weekday"/"weekend") mines a
    day-type-conditioned routine.
    """
    db = build_user_database(dataset, user_id, taxonomy, level, binning,
                             day_kind=day_kind)
    return _profile_from_db(
        (user_id, db),
        taxonomy=taxonomy,
        level=level,
        binning=binning,
        config=config,
        closed_only=closed_only,
    )


def _profile_from_db(
    task: Tuple[str, SequenceDatabase[TimedItem]],
    taxonomy: CategoryTree,
    level: AbstractionLevel,
    binning: TimeBinning,
    config: ModifiedPrefixSpanConfig,
    closed_only: bool,
) -> UserPatternProfile:
    """Mine one prebuilt user database into a profile.

    Module-level (and fed a single ``(user_id, db)`` item) so the process
    backend can pickle it as a ``functools.partial`` carrying the shared
    read-only context once per chunk.
    """
    user_id, db = task
    patterns = modified_prefixspan(db, config, taxonomy=taxonomy, n_bins=binning.n_bins)
    if closed_only:
        patterns = closed_patterns(patterns)
    return UserPatternProfile(
        user_id=user_id,
        patterns=tuple(patterns),
        n_days=len(db),
        binning=binning,
        level=level,
    )


def _profile_from_encoded(
    task: Tuple[str, str, Tuple],
    vocab,
    taxonomy: CategoryTree,
    level: AbstractionLevel,
    binning: TimeBinning,
    config: ModifiedPrefixSpanConfig,
    closed_only: bool,
) -> UserPatternProfile:
    """Mine one user's *interned* database shipped as raw id arrays.

    The process backend pickles the worker ``partial`` — including the
    dataset-wide :class:`~repro.sequences.ItemVocab` — once per worker;
    each task then carries only ``(user_id, db_name, packed id storage)``,
    and the database is re-adopted here without copying or re-encoding.
    """
    user_id, name, (flat, offsets) = task
    db = SequenceDatabase.from_storage(flat, offsets, vocab, name=name)
    return _profile_from_db(
        (user_id, db),
        taxonomy=taxonomy,
        level=level,
        binning=binning,
        config=config,
        closed_only=closed_only,
    )


def detect_all_patterns(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    closed_only: bool = True,
    day_kind: str = "all",
    exec_config: ExecConfig = ExecConfig(),
) -> Dict[str, UserPatternProfile]:
    """Detect every user's patterns; map user id → profile.

    The per-dataset work (labeler construction, sessionization) happens
    once up front; each user's mining then runs over ``exec_config`` —
    serially by default, or fanned out across worker processes with a
    deterministic ordered merge (output is identical either way).  All
    per-user databases share one dataset-wide vocabulary, which travels in
    the worker closure (shipped once per worker process); the per-task
    payload is just the user's packed id arrays.
    """
    with get_observer().span("patterns.detect_all") as span:
        databases = build_all_databases(dataset, taxonomy, level, binning,
                                        day_kind=day_kind)
        user_ids = list(databases)
        if not user_ids:
            span.set("n_users", 0)
            span.set("n_patterns", 0)
            return {}
        worker = partial(
            _profile_from_encoded,
            vocab=databases[user_ids[0]].vocab,
            taxonomy=taxonomy,
            level=level,
            binning=binning,
            config=config,
            closed_only=closed_only,
        )
        tasks = [
            (uid, databases[uid].name, databases[uid].storage) for uid in user_ids
        ]
        profiles = ordered_map(worker, tasks, exec_config, label="mine_user")
        span.set("n_users", len(user_ids))
        span.set("n_patterns", sum(p.n_patterns for p in profiles))
    return {profile.user_id: profile for profile in profiles}
