"""Place graphs: "a graph of visited places based on historical records".

The individual view of the platform shows each user a directed graph whose
nodes are the places (labels) they visit and whose edges are observed
same-day transitions, weighted by frequency.  Built on networkx so standard
graph analytics (PageRank, components) come for free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..data.records import CheckInDataset
from ..sequences import DailySession, Labeler, TimeBinning, HOURLY, sessionize_user
from .model import UserPatternProfile

__all__ = [
    "build_place_graph",
    "build_pattern_graph",
    "top_transitions",
    "place_importance",
]


def build_place_graph(
    dataset: CheckInDataset,
    user_id: str,
    labeler: Labeler,
    binning: TimeBinning = HOURLY,
) -> nx.DiGraph:
    """The user's observed-transition graph.

    Nodes carry ``visits`` (total check-ins with that label); edges carry
    ``weight`` (number of observed consecutive same-day transitions) and
    ``days`` (number of distinct days the transition occurred on).
    """
    graph = nx.DiGraph(user_id=user_id)
    sessions = sessionize_user(dataset, user_id, labeler, binning)
    for session in sessions:
        labels = [item.label for item in session.items]
        for label in labels:
            if graph.has_node(label):
                graph.nodes[label]["visits"] += 1
            else:
                graph.add_node(label, visits=1)
        for src, dst in zip(labels, labels[1:]):
            if src == dst:
                continue
            if graph.has_edge(src, dst):
                graph[src][dst]["weight"] += 1
                graph[src][dst]["day_set"].add(session.day)
            else:
                graph.add_edge(src, dst, weight=1, day_set={session.day})
    for _, _, attrs in graph.edges(data=True):
        attrs["days"] = len(attrs.pop("day_set"))
    return graph


def build_pattern_graph(profile: UserPatternProfile) -> nx.DiGraph:
    """The graph implied by the user's *mined patterns* (not raw records).

    Nodes are pattern item labels annotated with their best support and
    typical time bins; edges link consecutive items of each pattern with the
    pattern's support as weight (max over patterns sharing the edge).
    """
    graph = nx.DiGraph(user_id=profile.user_id)
    for pattern in profile.patterns:
        for item in pattern.items:
            if graph.has_node(item.label):
                node = graph.nodes[item.label]
                node["support"] = max(node["support"], pattern.support)
                node["bins"].add(item.bin)
            else:
                graph.add_node(item.label, support=pattern.support, bins={item.bin})
        for a, b in zip(pattern.items, pattern.items[1:]):
            if a.label == b.label:
                continue
            weight = pattern.support
            if graph.has_edge(a.label, b.label):
                graph[a.label][b.label]["weight"] = max(
                    graph[a.label][b.label]["weight"], weight
                )
            else:
                graph.add_edge(a.label, b.label, weight=weight)
    for _, attrs in graph.nodes(data=True):
        attrs["bins"] = sorted(attrs["bins"])
    return graph


def top_transitions(graph: nx.DiGraph, k: int = 10) -> List[Tuple[str, str, float]]:
    """The ``k`` heaviest edges as (src, dst, weight)."""
    edges = [(u, v, attrs.get("weight", 0)) for u, v, attrs in graph.edges(data=True)]
    edges.sort(key=lambda e: (-e[2], e[0], e[1]))
    return edges[:k]


def place_importance(graph: nx.DiGraph) -> Dict[str, float]:
    """PageRank importance of each place in the transition graph.

    Falls back to degree centrality when the graph has no edges (PageRank
    on an edgeless graph is just uniform and uninformative).
    """
    if graph.number_of_edges() == 0:
        n = graph.number_of_nodes()
        return {node: 1.0 / n for node in graph} if n else {}
    return nx.pagerank(graph, weight="weight")
