"""Similarity between users' mobility behaviour.

Used by the crowd layer's extension features: grouping users with alike
routines, and by the community view (which generalizes the paper's
"categorized together as a group" from exact co-location to behavioural
similarity).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..mining import SequentialPattern
from ..sequences import TimedItem
from .model import UserPatternProfile

__all__ = [
    "jaccard_similarity",
    "pattern_set_similarity",
    "sequence_edit_similarity",
    "profile_similarity_matrix",
]


def jaccard_similarity(a: Set, b: Set) -> float:
    """|a ∩ b| / |a ∪ b|, with the convention that two empty sets match (1.0)."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def pattern_set_similarity(p1: UserPatternProfile, p2: UserPatternProfile) -> float:
    """Jaccard similarity of the two users' pattern-item sets.

    Items are (bin, label) pairs, so "both at an Eatery around noon" counts
    as overlap even when the full patterns differ.
    """
    items1 = {item for p in p1.patterns for item in p.items}
    items2 = {item for p in p2.patterns for item in p.items}
    return jaccard_similarity(items1, items2)


def sequence_edit_similarity(a: Sequence[TimedItem], b: Sequence[TimedItem]) -> float:
    """Normalized Levenshtein similarity of two item sequences in [0, 1]."""
    if not a and not b:
        return 1.0
    n, m = len(a), len(b)
    # Classic DP over a rolling row.
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
        previous = current
    distance = previous[m]
    return 1.0 - distance / max(n, m)


def profile_similarity_matrix(
    profiles: Dict[str, UserPatternProfile]
) -> Tuple[List[str], np.ndarray]:
    """Symmetric pairwise pattern-set similarity over all users.

    Returns the sorted user-id list and the matching (n, n) matrix.
    """
    user_ids = sorted(profiles)
    n = len(user_ids)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            s = pattern_set_similarity(profiles[user_ids[i]], profiles[user_ids[j]])
            matrix[i, j] = matrix[j, i] = s
    return user_ids, matrix
