"""Classic PrefixSpan (Pei et al., TKDE 2004) with pseudo-projection.

This is the textbook algorithm over sequences of atomic items (check-in
streams are totally ordered, so elements are single items, not itemsets).
It serves as the exact-matching baseline the paper's *modified* PrefixSpan
(:mod:`repro.mining.modified`) extends.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

from ..sequences.database import SequenceDatabase
from .base import MiningLimits, SequentialPattern, sort_patterns, sorted_candidates

__all__ = ["prefixspan"]

Item = TypeVar("Item", bound=Hashable)

#: (sequence index, resume position) — the pseudo-projection unit.
_Projection = Tuple[int, int]


def prefixspan(
    db: SequenceDatabase[Item],
    min_support: float,
    limits: MiningLimits = MiningLimits(),
) -> List[SequentialPattern[Item]]:
    """Mine all frequent sequential patterns of ``db``.

    Parameters
    ----------
    db:
        The sequence database (one sequence per user-day in CrowdWeb).
    min_support:
        Relative support threshold in (0, 1]; a pattern is frequent when it
        occurs in at least ``ceil(min_support * |db|)`` sequences.
    limits:
        Length bounds on emitted patterns.

    Returns
    -------
    Patterns in canonical order (support desc, then length desc).
    """
    n = len(db)
    if n == 0:
        return []
    min_count = db.min_count(min_support)
    sequences = db.sequences
    results: List[SequentialPattern[Item]] = []

    def grow(prefix: Tuple[Item, ...], projections: Sequence[_Projection]) -> None:
        # Count, per candidate extension item, the sequences whose projected
        # postfix contains it — and remember the first match for projection.
        first_match: Dict[Item, Dict[int, int]] = {}
        for seq_index, pos in projections:
            seq = sequences[seq_index]
            for k in range(pos, len(seq)):
                per_seq = first_match.setdefault(seq[k], {})
                if seq_index not in per_seq:
                    per_seq[seq_index] = k + 1
        for item in sorted_candidates(list(first_match)):
            supporters = first_match[item]
            count = len(supporters)
            if count < min_count:
                continue
            pattern_items = prefix + (item,)
            if len(pattern_items) >= limits.min_length:
                results.append(
                    SequentialPattern(items=pattern_items, count=count, support=count / n)
                )
            if limits.admits_longer_than(len(pattern_items)):
                grow(pattern_items, sorted(supporters.items()))

    grow((), [(i, 0) for i in range(n)])
    return sort_patterns(results)
