"""Post-mining pattern filters: closed and maximal pattern reduction.

Frequent-pattern output is heavily redundant — every prefix of a frequent
pattern is frequent.  The UI and the crowd aggregator work on *closed*
patterns (no super-pattern with the same support) or *maximal* patterns
(no frequent super-pattern at all).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from .base import SequentialPattern, sort_patterns

__all__ = ["closed_patterns", "maximal_patterns", "top_k_patterns"]

P = TypeVar("P", bound=SequentialPattern)


def closed_patterns(patterns: Sequence[P]) -> List[P]:
    """Keep patterns with no super-pattern of equal count.

    Quadratic in the number of patterns, which is fine at per-user scale
    (tens to hundreds of patterns).
    """
    kept: List[P] = []
    for p in patterns:
        absorbed = any(
            q is not p
            and len(q.items) > len(p.items)
            and q.count == p.count
            and p.is_subpattern_of(q)
            for q in patterns
        )
        if not absorbed:
            kept.append(p)
    return sort_patterns(kept)


def maximal_patterns(patterns: Sequence[P]) -> List[P]:
    """Keep patterns with no (frequent) super-pattern in the result set."""
    kept: List[P] = []
    for p in patterns:
        dominated = any(
            q is not p and len(q.items) > len(p.items) and p.is_subpattern_of(q)
            for q in patterns
        )
        if not dominated:
            kept.append(p)
    return sort_patterns(kept)


def top_k_patterns(patterns: Sequence[P], k: int) -> List[P]:
    """The ``k`` best patterns in canonical order (support, then length)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return sort_patterns(patterns)[:k]
