"""GSP (Generalized Sequential Patterns, Srikant & Agrawal 1996) baseline.

Level-wise candidate generation + scan counting, over atomic items.  GSP
visits the same pattern space as PrefixSpan but pays the classic
generate-and-test cost, which is exactly what the mining-performance
benchmark demonstrates (PrefixSpan's projection wins, as in the PrefixSpan
paper the authors cite).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

from ..sequences.database import SequenceDatabase, is_subsequence
from .base import MiningLimits, SequentialPattern, sort_patterns

__all__ = ["gsp"]

Item = TypeVar("Item", bound=Hashable)


def _generate_candidates(
    frequent: List[Tuple[Item, ...]]
) -> Set[Tuple[Item, ...]]:
    """Join step: patterns a and b with a[1:] == b[:-1] yield a + b[-1:]."""
    by_prefix: Dict[Tuple[Item, ...], List[Tuple[Item, ...]]] = {}
    for pattern in frequent:
        by_prefix.setdefault(pattern[:-1], []).append(pattern)
    candidates: Set[Tuple[Item, ...]] = set()
    for a in frequent:
        for b in by_prefix.get(a[1:], ()):
            candidates.add(a + (b[-1],))
    return candidates


def _prune(
    candidates: Set[Tuple[Item, ...]], frequent_prev: Set[Tuple[Item, ...]]
) -> List[Tuple[Item, ...]]:
    """Apriori prune: every contiguous (k-1)-subsequence must be frequent."""
    kept = []
    for candidate in candidates:
        subpatterns = (
            candidate[:i] + candidate[i + 1:] for i in range(len(candidate))
        )
        if all(sub in frequent_prev for sub in subpatterns):
            kept.append(candidate)
    return kept


def gsp(
    db: SequenceDatabase[Item],
    min_support: float,
    limits: MiningLimits = MiningLimits(),
) -> List[SequentialPattern[Item]]:
    """Mine frequent sequential patterns with GSP.

    Produces exactly the same pattern set as
    :func:`repro.mining.prefixspan.prefixspan` (a property the test suite
    asserts), only slower on dense data.
    """
    n = len(db)
    if n == 0:
        return []
    min_count = db.min_count(min_support)
    results: List[SequentialPattern[Item]] = []

    # L1: frequent single items.
    frequent: List[Tuple[Item, ...]] = []
    for item, count in sorted(db.item_frequencies().items(), key=lambda kv: repr(kv[0])):
        if count >= min_count:
            frequent.append((item,))
            if limits.min_length <= 1:
                results.append(SequentialPattern(items=(item,), count=count, support=count / n))

    length = 1
    while frequent and limits.admits_longer_than(length):
        candidates = _prune(_generate_candidates(frequent), set(frequent))
        next_frequent: List[Tuple[Item, ...]] = []
        for candidate in sorted(candidates, key=repr):
            count = sum(1 for seq in db if is_subsequence(candidate, seq))
            if count >= min_count:
                next_frequent.append(candidate)
                if len(candidate) >= limits.min_length:
                    results.append(
                        SequentialPattern(items=candidate, count=count, support=count / n)
                    )
        frequent = next_frequent
        length += 1

    return sort_patterns(results)
