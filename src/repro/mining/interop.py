"""SPMF-style text interop for sequence databases and mined patterns.

`SPMF <https://www.philippe-fournier-viger.com/spmf/>`_ is the de-facto
toolbox for sequential-pattern mining; its text format (items as integers,
``-1`` closes an itemset, ``-2`` closes a sequence) is the lingua franca of
the field.  These functions let CrowdWeb databases round-trip through SPMF
(e.g. to cross-check the miners against SPMF's PrefixSpan) and let SPMF
output be loaded back as :class:`SequentialPattern` objects.

Items here are atomic, so every itemset holds exactly one item.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Hashable, List, Sequence, Tuple, TypeVar, Union

from ..sequences import SequenceDatabase, TimedItem
from .base import SequentialPattern, sort_patterns

__all__ = [
    "ItemCodec",
    "write_spmf_database",
    "read_spmf_database",
    "write_spmf_patterns",
    "read_spmf_patterns",
]

Item = TypeVar("Item", bound=Hashable)


class ItemCodec:
    """Stable bidirectional mapping between items and SPMF integer ids.

    Ids start at 1 (SPMF reserves non-positive integers as separators) and
    are assigned in sorted-repr order, so the same database always produces
    the same encoding.
    """

    def __init__(self, items: Sequence[Item]) -> None:
        ordered = sorted(set(items), key=repr)
        self._to_id: Dict[Item, int] = {item: i + 1 for i, item in enumerate(ordered)}
        self._from_id: Dict[int, Item] = {i: item for item, i in self._to_id.items()}

    @classmethod
    def for_database(cls, db: SequenceDatabase) -> "ItemCodec":
        return cls([item for seq in db for item in seq])

    def encode(self, item: Item) -> int:
        try:
            return self._to_id[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in codec") from None

    def decode(self, item_id: int) -> Item:
        try:
            return self._from_id[item_id]
        except KeyError:
            raise KeyError(f"id {item_id} not in codec") from None

    def __len__(self) -> int:
        return len(self._to_id)

    def __contains__(self, item: Item) -> bool:
        return item in self._to_id

    def mapping_lines(self) -> List[str]:
        """Human-readable ``id<TAB>repr(item)`` lines (the sidecar format)."""
        return [f"{i}\t{self._from_id[i]!r}" for i in sorted(self._from_id)]


def write_spmf_database(
    db: SequenceDatabase, path: Union[str, Path]
) -> ItemCodec:
    """Write a database in SPMF sequence format; returns the codec used.

    A ``<path>.dict`` sidecar records the id→item mapping.
    """
    path = Path(path)
    codec = ItemCodec.for_database(db)
    lines = []
    for seq in db:
        parts: List[str] = []
        for item in seq:
            parts.append(str(codec.encode(item)))
            parts.append("-1")
        parts.append("-2")
        lines.append(" ".join(parts))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    Path(str(path) + ".dict").write_text(
        "\n".join(codec.mapping_lines()) + "\n", encoding="utf-8"
    )
    return codec


def read_spmf_database(path: Union[str, Path]) -> SequenceDatabase[int]:
    """Load an SPMF sequence file as a database of integer items.

    Multi-item itemsets are flattened in file order (this library's items
    are atomic).  Malformed tokens raise :class:`ValueError` with location.
    """
    path = Path(path)
    sequences: List[List[int]] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line or line.startswith(("#", "@")):
            continue
        seq: List[int] = []
        for token in line.split():
            try:
                value = int(token)
            except ValueError:
                raise ValueError(f"{path}:{lineno}: bad token {token!r}") from None
            if value == -1:
                continue
            if value == -2:
                break
            if value <= 0:
                raise ValueError(f"{path}:{lineno}: invalid item id {value}")
            seq.append(value)
        sequences.append(seq)
    return SequenceDatabase(sequences, name=path.stem)


def write_spmf_patterns(
    patterns: Sequence[SequentialPattern],
    codec: ItemCodec,
    path: Union[str, Path],
) -> None:
    """Write patterns in SPMF output style: ``1 -1 2 -1 #SUP: 5``."""
    path = Path(path)
    lines = []
    for p in sort_patterns(patterns):
        ids = " -1 ".join(str(codec.encode(item)) for item in p.items)
        lines.append(f"{ids} -1 #SUP: {p.count}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_spmf_patterns(
    path: Union[str, Path], codec: ItemCodec, n_sequences: int
) -> List[SequentialPattern]:
    """Load SPMF pattern output back into :class:`SequentialPattern`s.

    ``n_sequences`` supplies the denominator for relative support.
    """
    if n_sequences < 1:
        raise ValueError("n_sequences must be >= 1")
    path = Path(path)
    patterns: List[SequentialPattern] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if "#SUP:" not in line:
            raise ValueError(f"{path}:{lineno}: missing #SUP: marker")
        items_part, support_part = line.split("#SUP:", 1)
        try:
            count = int(support_part.strip())
            ids = [int(tok) for tok in items_part.split() if tok != "-1"]
            items = tuple(codec.decode(i) for i in ids)
        except (ValueError, KeyError) as exc:
            raise ValueError(f"{path}:{lineno}: malformed pattern line: {exc}") from exc
        if not items:
            raise ValueError(f"{path}:{lineno}: empty pattern")
        patterns.append(
            SequentialPattern(items=items, count=count, support=count / n_sequences)
        )
    return sort_patterns(patterns)
