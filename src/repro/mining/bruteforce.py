"""Brute-force sequential-pattern miner — the test oracle.

Enumerates every distinct subsequence (up to a length cap) that actually
occurs in the database, then counts support by scanning.  Exponential in
sequence length, so only usable on small inputs — which is exactly what the
property-based tests feed it to cross-check PrefixSpan and GSP.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple, TypeVar

from ..sequences.database import SequenceDatabase, is_subsequence
from .base import MiningLimits, SequentialPattern, sort_patterns

__all__ = ["bruteforce_mine"]

Item = TypeVar("Item", bound=Hashable)


def _subsequences_upto(
    seq: Tuple[Item, ...], max_length: int
) -> Set[Tuple[Item, ...]]:
    """All distinct non-empty subsequences of ``seq`` up to ``max_length``."""
    found: Set[Tuple[Item, ...]] = set()

    def extend(start: int, current: Tuple[Item, ...]) -> None:
        if current:
            found.add(current)
        if len(current) >= max_length:
            return
        for k in range(start, len(seq)):
            extend(k + 1, current + (seq[k],))

    extend(0, ())
    return found


def bruteforce_mine(
    db: SequenceDatabase[Item],
    min_support: float,
    limits: MiningLimits = MiningLimits(max_length=4),
) -> List[SequentialPattern[Item]]:
    """Exhaustively mine frequent patterns (oracle semantics).

    ``limits.max_length`` must be set — unbounded enumeration is a bug, not
    a feature, in an oracle.
    """
    if limits.max_length is None:
        raise ValueError("bruteforce mining requires a max_length limit")
    n = len(db)
    if n == 0:
        return []
    min_count = db.min_count(min_support)

    candidates: Set[Tuple[Item, ...]] = set()
    for seq in db:
        candidates |= _subsequences_upto(seq, limits.max_length)

    results: List[SequentialPattern[Item]] = []
    # sort_patterns below imposes a total order (count, length, lexicographic),
    # so the hash order this loop appends in never reaches the output.
    for candidate in candidates:  # crowdlint: disable=CW203
        if len(candidate) < limits.min_length:
            continue
        count = sum(1 for seq in db if is_subsequence(candidate, seq))
        if count >= min_count:
            results.append(SequentialPattern(items=candidate, count=count, support=count / n))
    return sort_patterns(results)
