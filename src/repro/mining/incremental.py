"""Incremental pattern maintenance as new days stream in.

The demo platform ingests live uploads ("if any audience member is willing
to share their check-in history, we can upload it"), and a deployed
CrowdWeb receives each user's new day every midnight.  Re-mining everything
per day is wasteful; :class:`IncrementalPatternStore` maintains a user's
pattern set with exact support counts as days arrive and tells the caller
when a full re-mine is actually needed.

Guarantees
----------
* Counts/supports of *tracked* patterns are exact at all times (every new
  day is matched against every tracked pattern with the same flexible
  semantics the miner uses).
* The tracked set is complete immediately after :meth:`remine`.  Between
  re-mines, new behaviour can create patterns that were never tracked; the
  store detects the observable trigger — a pattern *item* crossing the
  support threshold that was not frequent at the last mine — and raises
  :attr:`needs_remine`.  A day-count backstop (``remine_interval``) bounds
  staleness regardless.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sequences import SequenceDatabase, TimedItem
from ..taxonomy import CategoryTree
from .base import SequentialPattern, sort_patterns
from .modified import FlexibleMatcher, ModifiedPrefixSpanConfig, modified_prefixspan

__all__ = ["IncrementalPatternStore"]


class IncrementalPatternStore:
    """One user's pattern set, maintained day by day."""

    def __init__(
        self,
        initial_days: Sequence[Sequence[TimedItem]],
        config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
        taxonomy: Optional[CategoryTree] = None,
        n_bins: int = 24,
        remine_interval: int = 7,
    ) -> None:
        if remine_interval < 1:
            raise ValueError("remine_interval must be >= 1")
        self.config = config
        self.taxonomy = taxonomy
        self.n_bins = n_bins
        self.remine_interval = remine_interval
        self._matcher = FlexibleMatcher(
            n_bins=n_bins,
            time_tolerance_bins=config.time_tolerance_bins,
            taxonomy=taxonomy,
            include_ancestor_labels=config.include_ancestor_labels,
        )
        self._days: List[Tuple[TimedItem, ...]] = [tuple(d) for d in initial_days]
        self._pattern_counts: Dict[Tuple[TimedItem, ...], int] = {}
        self._item_counts: Dict[TimedItem, int] = {}
        self._frequent_items_at_mine: Set[TimedItem] = set()
        self._days_since_mine = 0
        self._stale = False
        self.remine()

    # ------------------------------------------------------------ matching

    def _matches_day(self, pattern: Tuple[TimedItem, ...], day: Tuple[TimedItem, ...]) -> bool:
        """Flexible-subsequence check (same semantics as the miner)."""
        max_gap = self.config.max_gap_bins

        def helper(p_idx: int, start: int, prev_bin: Optional[int]) -> bool:
            if p_idx == len(pattern):
                return True
            for k in range(start, len(day)):
                item = day[k]
                if prev_bin is not None and max_gap is not None:
                    if item.bin - prev_bin > max_gap:
                        continue
                if self._matcher.matches(pattern[p_idx], item):
                    if helper(p_idx + 1, k + 1, item.bin):
                        return True
            return False

        return helper(0, 0, None)

    def _count_items(self, day: Tuple[TimedItem, ...]) -> None:
        supported: Set[TimedItem] = set()
        for item in day:
            supported.update(self._matcher.candidates_for(item))
        # An item candidate is supported by this day if any day item matches it.
        for candidate in supported:
            self._item_counts[candidate] = self._item_counts.get(candidate, 0) + 1

    # ------------------------------------------------------------ lifecycle

    @property
    def n_days(self) -> int:
        return len(self._days)

    @property
    def min_count(self) -> int:
        import math

        return max(1, math.ceil(self.config.min_support * max(1, len(self._days))))

    @property
    def needs_remine(self) -> bool:
        """True when completeness can no longer be guaranteed."""
        return self._stale or self._days_since_mine >= self.remine_interval

    def add_day(self, items: Sequence[TimedItem]) -> None:
        """Ingest one new day; exact-updates tracked counts."""
        day = tuple(items)
        self._days.append(day)
        self._days_since_mine += 1
        self._count_items(day)
        for pattern in self._pattern_counts:
            if self._matches_day(pattern, day):
                self._pattern_counts[pattern] += 1
        # Staleness trigger: an item newly crossing the threshold that was
        # not frequent at the last full mine was never grown into patterns.
        threshold = self.min_count
        for candidate, count in self._item_counts.items():
            if count >= threshold and candidate not in self._frequent_items_at_mine:
                self._stale = True
                break

    def remine(self) -> None:
        """Full re-mine; restores the completeness guarantee."""
        db = SequenceDatabase(self._days, name="incremental")
        mined = modified_prefixspan(db, self.config, taxonomy=self.taxonomy,
                                    n_bins=self.n_bins)
        self._pattern_counts = {p.items: p.count for p in mined}
        # Rebuild item counts from scratch (exact).
        self._item_counts = {}
        for day in self._days:
            self._count_items(day)
        threshold = self.min_count
        self._frequent_items_at_mine = {
            item for item, count in self._item_counts.items() if count >= threshold
        }
        self._days_since_mine = 0
        self._stale = False

    # -------------------------------------------------------------- output

    def patterns(self) -> List[SequentialPattern[TimedItem]]:
        """Currently-frequent tracked patterns, canonical order."""
        n = max(1, len(self._days))
        threshold = self.min_count
        out = [
            SequentialPattern(items=items, count=count, support=count / n)
            for items, count in self._pattern_counts.items()
            if count >= threshold
        ]
        return sort_patterns(out)

    def support_of(self, items: Sequence[TimedItem]) -> Optional[float]:
        """Exact support of a tracked pattern, or None if untracked."""
        count = self._pattern_counts.get(tuple(items))
        if count is None:
            return None
        return count / max(1, len(self._days))
