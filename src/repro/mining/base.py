"""Common types for sequential-pattern miners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "SequentialPattern",
    "MiningLimits",
    "candidate_sort_key",
    "sort_patterns",
    "sorted_candidates",
]

Item = TypeVar("Item", bound=Hashable)


def candidate_sort_key(item):
    """Deterministic candidate-expansion order shared by the miners.

    Timed items (anything exposing ``label``/``bin``, i.e.
    :class:`~repro.sequences.items.TimedItem`) order by ``(label, bin)`` —
    the canonical report order of the modified algorithm.  Other item types
    keep their natural order.
    """
    label = getattr(item, "label", None)
    bin_index = getattr(item, "bin", None)
    if label is not None and bin_index is not None:
        return (label, bin_index)
    return item


def sorted_candidates(items: Sequence[Item]) -> List[Item]:
    """Sort candidate items for expansion: ``(label, bin)`` for timed items,
    natural order otherwise, with ``repr`` as the tie-safe fallback for
    heterogeneous item types that do not compare."""
    items = list(items)
    try:
        return sorted(items, key=candidate_sort_key)
    except TypeError:
        return sorted(items, key=repr)


@dataclass(frozen=True)
class SequentialPattern(Generic[Item]):
    """A mined frequent sequence with its support.

    ``count`` is the number of database sequences containing the pattern;
    ``support`` is ``count / |database|``.
    """

    items: Tuple[Item, ...]
    count: int
    support: float

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a pattern must contain at least one item")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if not (0.0 <= self.support <= 1.0 + 1e-12):
            raise ValueError(f"support {self.support} out of [0, 1]")

    def __len__(self) -> int:
        return len(self.items)

    def is_subpattern_of(self, other: "SequentialPattern[Item]") -> bool:
        """True when this pattern is a (gappy) subsequence of ``other``."""
        it = iter(other.items)
        return all(any(item == candidate for candidate in it) for item in self.items)

    def format(self, item_fmt: Optional[Callable[[Item], str]] = None) -> str:
        fmt = item_fmt or str
        arrow = " → ".join(fmt(i) for i in self.items)
        return f"[{arrow}] (support {self.support:.2f}, n={self.count})"


@dataclass(frozen=True)
class MiningLimits:
    """Shared structural limits across miners."""

    min_length: int = 1
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ValueError("min_length must be >= 1")
        if self.max_length is not None and self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")

    def admits_longer_than(self, length: int) -> bool:
        """Can patterns longer than ``length`` still be emitted?"""
        return self.max_length is None or length < self.max_length


def sort_patterns(patterns: Sequence[SequentialPattern]) -> List[SequentialPattern]:
    """Canonical report order: support desc, length desc, then lexicographic."""
    return sorted(
        patterns,
        key=lambda p: (-p.count, -len(p.items), tuple(repr(i) for i in p.items)),
    )
