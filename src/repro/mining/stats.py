"""Statistics over mining output — the quantities plotted in Figs. 5–8.

The paper measures, per user: the *number of sequences* (mined frequent
patterns) and the *average length of sequences*; then reports the average
over users per ``min_support`` and the distribution at ``min_support=0.5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from .base import SequentialPattern

__all__ = ["UserMiningStats", "user_mining_stats", "MiningAggregate", "aggregate_stats"]


@dataclass(frozen=True)
class UserMiningStats:
    """Per-user summary of one mining run."""

    user_id: str
    n_sequences: int  # the paper's "number of sequences extracted"
    avg_length: float
    max_length: int
    n_days: int  # size of the user's sequence database


def user_mining_stats(
    user_id: str, patterns: Sequence[SequentialPattern], n_days: int
) -> UserMiningStats:
    """Summarize one user's mined pattern set."""
    if not patterns:
        return UserMiningStats(user_id=user_id, n_sequences=0, avg_length=0.0,
                               max_length=0, n_days=n_days)
    lengths = [len(p.items) for p in patterns]
    return UserMiningStats(
        user_id=user_id,
        n_sequences=len(patterns),
        avg_length=float(np.mean(lengths)),
        max_length=max(lengths),
        n_days=n_days,
    )


@dataclass(frozen=True)
class MiningAggregate:
    """Across-user aggregate for one ``min_support`` setting."""

    min_support: float
    n_users: int
    mean_sequences_per_user: float
    median_sequences_per_user: float
    std_sequences_per_user: float
    mean_avg_length: float
    median_avg_length: float
    std_avg_length: float

    def as_row(self) -> Dict[str, float]:
        return {
            "min_support": self.min_support,
            "n_users": self.n_users,
            "mean_sequences_per_user": self.mean_sequences_per_user,
            "median_sequences_per_user": self.median_sequences_per_user,
            "mean_avg_length": self.mean_avg_length,
            "median_avg_length": self.median_avg_length,
        }


def aggregate_stats(
    min_support: float, per_user: Mapping[str, UserMiningStats]
) -> MiningAggregate:
    """Aggregate per-user stats into the paper's per-support summary.

    Users with zero patterns still count (their 0 pulls the mean down, which
    is what "sequences per user decreases with support" measures); users
    with zero patterns are excluded from the *length* average, since an
    empty set has no length.
    """
    if not per_user:
        raise ValueError("cannot aggregate an empty stats collection")
    counts = np.array([s.n_sequences for s in per_user.values()], dtype=float)
    lengths = np.array(
        [s.avg_length for s in per_user.values() if s.n_sequences > 0], dtype=float
    )
    if lengths.size == 0:
        lengths = np.array([0.0])
    return MiningAggregate(
        min_support=min_support,
        n_users=len(per_user),
        mean_sequences_per_user=float(counts.mean()),
        median_sequences_per_user=float(np.median(counts)),
        std_sequences_per_user=float(counts.std()),
        mean_avg_length=float(lengths.mean()),
        median_avg_length=float(np.median(lengths)),
        std_avg_length=float(lengths.std()),
    )
