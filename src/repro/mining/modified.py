"""The *modified PrefixSpan* of CrowdWeb/iMAP: flexible mobility patterns.

The paper's motivation is that humans are consistent in *kind* but flexible
in *detail*: lunch is always "a Thai place around noon", never the same
venue, never the exact same minute.  Classic PrefixSpan over raw items
cannot see such a routine.  The modified algorithm works on
(time-bin, place-label) items and relaxes matching in three directions:

* **time tolerance** — a pattern item at bin 12 matches visits at bins
  11–13 (circular, configurable);
* **label flexibility** — optionally, a pattern item labeled with an
  *ancestor* category ("Eatery") matches visits to any descendant
  ("Thai Restaurant"); candidate pattern items are generated at every
  abstraction level, so the most supported level wins;
* **gap constraint** — optionally, consecutive pattern items must occur
  within ``max_gap_bins`` of each other, keeping patterns within one
  routine episode rather than spanning breakfast-to-midnight.

Support stays sequence-relative (fraction of user-days), matching the
paper's ``min_support`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import DEPTH_BUCKETS, get_observer
from ..sequences.database import SequenceDatabase
from ..sequences.items import TimedItem
from ..taxonomy import CategoryTree, UnknownCategoryError
from .base import MiningLimits, SequentialPattern, candidate_sort_key, sort_patterns
from .index import build_match_index

__all__ = [
    "ExactMatcher",
    "FlexibleMatcher",
    "ModifiedPrefixSpanConfig",
    "modified_prefixspan",
    "modified_prefixspan_reference",
]


class ExactMatcher:
    """Degenerate matcher: the modified algorithm collapses to PrefixSpan."""

    def candidates_for(self, item: TimedItem) -> Iterable[TimedItem]:
        return (item,)

    def matches(self, pattern_item: TimedItem, item: TimedItem) -> bool:
        return pattern_item == item


class FlexibleMatcher:
    """Time-tolerant, optionally taxonomy-aware item matching.

    Parameters
    ----------
    n_bins:
        Number of time bins per day (for circular bin distance).
    time_tolerance_bins:
        A pattern item at bin ``b`` matches sequence items in
        ``[b - tol, b + tol]`` (circular).
    taxonomy / include_ancestor_labels:
        When enabled, each observed label also generates pattern-item
        candidates for each of its taxonomy ancestors, and an ancestor label
        matches any descendant.  Labels missing from the taxonomy degrade to
        exact matching.
    """

    def __init__(
        self,
        n_bins: int,
        time_tolerance_bins: int = 1,
        taxonomy: Optional[CategoryTree] = None,
        include_ancestor_labels: bool = False,
    ) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if time_tolerance_bins < 0:
            raise ValueError("time tolerance must be non-negative")
        self.n_bins = n_bins
        self.time_tolerance_bins = time_tolerance_bins
        self.taxonomy = taxonomy
        self.include_ancestor_labels = include_ancestor_labels and taxonomy is not None
        self._ancestor_cache: Dict[str, Tuple[str, ...]] = {}
        self._distance_cache: Dict[Tuple[int, int], int] = {}

    def _bin_distance(self, a: int, b: int) -> int:
        # Memoized: the miner evaluates the same (pattern bin, item bin)
        # pairs millions of times on a large day database.
        key = (a, b)
        cached = self._distance_cache.get(key)
        if cached is None:
            d = abs(a - b)
            cached = self._distance_cache[key] = min(d, self.n_bins - d)
        return cached

    def _ancestors_of(self, label: str) -> Tuple[str, ...]:
        """The label itself plus its taxonomy ancestors (nearest first)."""
        cached = self._ancestor_cache.get(label)
        if cached is not None:
            return cached
        names: Tuple[str, ...] = (label,)
        if self.include_ancestor_labels:
            assert self.taxonomy is not None
            try:
                node = self.taxonomy.resolve(label)
                names = (label,) + tuple(a.name for a in self.taxonomy.ancestors(node.category_id))
            except UnknownCategoryError:
                pass
        self._ancestor_cache[label] = names
        return names

    def _label_matches(self, pattern_label: str, item_label: str) -> bool:
        return pattern_label in self._ancestors_of(item_label)

    def candidates_for(self, item: TimedItem) -> Iterable[TimedItem]:
        # The matcher protocol's boundary API: consumed by the reference
        # oracle and by index *construction* (once per distinct item), never
        # inside the interned mining recursion.
        return (TimedItem(item.bin, name) for name in self._ancestors_of(item.label))  # crowdlint: disable=CW505

    def matches(self, pattern_item: TimedItem, item: TimedItem) -> bool:
        return (
            self._bin_distance(pattern_item.bin, item.bin) <= self.time_tolerance_bins
            and self._label_matches(pattern_item.label, item.label)
        )


@dataclass(frozen=True)
class ModifiedPrefixSpanConfig:
    """Knobs of the modified algorithm (defaults match the paper's setup)."""

    min_support: float = 0.5
    limits: MiningLimits = field(default_factory=MiningLimits)
    time_tolerance_bins: int = 1
    max_gap_bins: Optional[int] = None
    include_ancestor_labels: bool = False
    #: Merge pattern-item candidates that differ only in bin but support the
    #: exact same user-days (keeps reports free of near-duplicate patterns).
    canonicalize_bins: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.min_support <= 1.0):
            raise ValueError("min_support must be in (0, 1]")
        if self.time_tolerance_bins < 0:
            raise ValueError("time_tolerance_bins must be non-negative")
        if self.max_gap_bins is not None and self.max_gap_bins < 0:
            raise ValueError("max_gap_bins must be non-negative")


def modified_prefixspan(
    db: SequenceDatabase[TimedItem],
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    taxonomy: Optional[CategoryTree] = None,
    n_bins: int = 24,
) -> List[SequentialPattern[TimedItem]]:
    """Mine flexible mobility patterns from one user's daily-sequence database.

    Returns patterns in canonical order.  With ``time_tolerance_bins=0`` and
    no taxonomy this is exactly classic PrefixSpan.

    This is the indexed fast path: it precomputes an inverted match index
    (:mod:`repro.mining.index`) once per database, restricts each recursion
    node to candidates actually occurring in the projected sequences, and
    prunes candidates whose remaining possible supporters cannot reach the
    support threshold.  The whole recursion runs on the interned
    representation — candidate ids are dense ints whose numeric order *is*
    :func:`~repro.mining.base.candidate_sort_key` order, and projection
    position sets are int bitmasks — decoding back to :class:`TimedItem`
    only at pattern emission.  Output is bit-for-bit identical to
    :func:`modified_prefixspan_reference` (the parity suite enforces this).
    """
    n = len(db)
    if n == 0:
        return []
    matcher = FlexibleMatcher(
        n_bins=n_bins,
        time_tolerance_bins=config.time_tolerance_bins,
        taxonomy=taxonomy,
        include_ancestor_labels=config.include_ancestor_labels,
    )
    min_count = db.min_count(config.min_support)
    index = build_match_index(db, matcher)
    candidate_items = index.candidate_items
    seq_candidates = index.seq_candidates
    supporters_of = index.supporters_of
    max_gap_bins = config.max_gap_bins
    min_length = config.limits.min_length
    admits_longer_than = config.limits.admits_longer_than
    canonicalize_bins = config.canonicalize_bins
    results: List[SequentialPattern[TimedItem]] = []

    # Structural counters for the observability layer.  The tallies are
    # plain local ints (negligible next to the matching work) so the mined
    # output and recursion order are identical whether or not an observer
    # is active; everything is emitted in one shot at the end.
    observer = get_observer()
    observing = observer.enabled
    n_nodes = 0
    n_pruned_upper = 0  # candidates skipped by the occurrence upper bound
    n_pruned_exact = 0  # candidates rejected by the exact supporter scan
    node_depths: List[int] = []

    # Occurrence tally, reused across recursion nodes: ``counts`` is a flat
    # list indexed by candidate id (always all-zero between nodes) and
    # ``touched`` records which slots a node dirtied, so resetting costs
    # O(candidates seen) rather than O(pool).
    counts = [0] * len(candidate_items)

    def grow(prefix: Tuple[TimedItem, ...], projections: Dict[int, int]) -> None:
        nonlocal n_nodes, n_pruned_upper, n_pruned_exact
        n_nodes += 1
        if observing:
            node_depths.append(len(prefix))
        gap = max_gap_bins if (prefix and max_gap_bins is not None) else None
        # Upper-bound tally: in how many projected sequences does each
        # candidate occur at all (at any position)?  Only candidates that
        # could still reach min_count get the exact position check.
        touched: List[int] = []
        for seq_index in projections:
            for cid in seq_candidates[seq_index]:
                if counts[cid] == 0:
                    touched.append(cid)
                counts[cid] += 1

        supported: Dict[int, Dict[int, int]] = {}
        for cid in touched:
            upper = counts[cid]
            counts[cid] = 0  # reset as we drain; all-zero again before recursing
            if upper < min_count:
                n_pruned_upper += 1
                continue
            supporters = supporters_of(cid, projections, gap, min_count, upper)
            if supporters is not None:
                supported[cid] = supporters
            else:
                n_pruned_exact += 1

        if canonicalize_bins:
            supported = _canonicalize_ids(supported, candidate_items)

        # Candidate ids sort exactly like candidate_sort_key sorts items.
        for cid in sorted(supported):
            supporters = supported[cid]
            count = len(supporters)
            pattern_items = prefix + (candidate_items[cid],)
            if len(pattern_items) >= min_length:
                results.append(
                    SequentialPattern(items=pattern_items, count=count, support=count / n)
                )
            if admits_longer_than(len(pattern_items)):
                grow(pattern_items, supporters)

    grow((), {i: 1 for i in range(n)})
    if observer.enabled:
        observer.inc("repro_mining_runs_total")
        observer.inc("repro_mining_nodes_total", n_nodes)
        observer.inc("repro_mining_prune_upper_total", n_pruned_upper)
        observer.inc("repro_mining_prune_exact_total", n_pruned_exact)
        observer.observe(
            "repro_mining_candidate_pool_size", index.n_candidates(),
            buckets=(8, 16, 32, 64, 128, 256, 512, 1024, 2048),
        )
        for depth in node_depths:
            observer.observe(
                "repro_mining_projection_depth", depth, buckets=DEPTH_BUCKETS
            )
    return sort_patterns(results)


def modified_prefixspan_reference(
    db: SequenceDatabase[TimedItem],
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    taxonomy: Optional[CategoryTree] = None,
    n_bins: int = 24,
) -> List[SequentialPattern[TimedItem]]:
    """The original straight-line miner: global pool re-scan at every node.

    Kept as the parity oracle and the benchmark baseline for
    :func:`modified_prefixspan`; do not use it on large databases.
    """
    n = len(db)
    if n == 0:
        return []
    matcher = FlexibleMatcher(
        n_bins=n_bins,
        time_tolerance_bins=config.time_tolerance_bins,
        taxonomy=taxonomy,
        include_ancestor_labels=config.include_ancestor_labels,
    )
    min_count = db.min_count(config.min_support)
    sequences = db.sequences
    results: List[SequentialPattern[TimedItem]] = []

    def all_match_positions(
        candidate: TimedItem, seq: Tuple[TimedItem, ...], starts: FrozenSet[int], with_gap: bool
    ) -> FrozenSet[int]:
        """Resume positions after every admissible match of ``candidate``."""
        out: Set[int] = set()
        for start in starts:
            prev_bin = seq[start - 1].bin if (with_gap and start > 0) else None
            for k in range(start, len(seq)):
                item = seq[k]
                if prev_bin is not None and config.max_gap_bins is not None:
                    if item.bin - prev_bin > config.max_gap_bins:
                        continue
                if matcher.matches(candidate, item):
                    out.add(k + 1)
        return frozenset(out)

    # Candidate pattern items are drawn from the database's full observed
    # vocabulary (plus taxonomy ancestors).  The pool must be global, not
    # per-projection: with time tolerance, a pattern item at bin b can match
    # postfix items at bins b±tol even when no postfix item sits at b itself.
    global_pool: Set[TimedItem] = set()
    for seq in sequences:
        for item in seq:
            global_pool.update(matcher.candidates_for(item))

    def grow(prefix: Tuple[TimedItem, ...], projections: Dict[int, FrozenSet[int]]) -> None:
        with_gap = bool(prefix) and config.max_gap_bins is not None
        # Exact support of every pool candidate via the match predicate.
        supported: Dict[TimedItem, Dict[int, FrozenSet[int]]] = {}
        for candidate in global_pool:
            supporters: Dict[int, FrozenSet[int]] = {}
            for seq_index, starts in projections.items():
                positions = all_match_positions(candidate, sequences[seq_index], starts, with_gap)
                if positions:
                    supporters[seq_index] = positions
            if len(supporters) >= min_count:
                supported[candidate] = supporters

        if config.canonicalize_bins:
            supported = _canonicalize(supported)

        for candidate in sorted(supported, key=candidate_sort_key):
            supporters = supported[candidate]
            count = len(supporters)
            pattern_items = prefix + (candidate,)
            if len(pattern_items) >= config.limits.min_length:
                results.append(
                    SequentialPattern(items=pattern_items, count=count, support=count / n)
                )
            if config.limits.admits_longer_than(len(pattern_items)):
                grow(pattern_items, supporters)

    grow((), {i: frozenset({0}) for i in range(n)})
    return sort_patterns(results)


def _canonicalize_ids(
    supported: Dict[int, Dict[int, int]],
    candidate_items: Sequence[TimedItem],
) -> Dict[int, Dict[int, int]]:
    """Interned twin of :func:`_canonicalize` (fast path).

    Same semantics over ids: position bitmasks are bijective with the
    reference's position frozensets, so two candidates have identical
    ``{sequence → mask}`` evidence exactly when the reference sees identical
    ``{sequence → positions}`` evidence — and ascending id order is
    ``candidate_sort_key`` order, so "keep the earliest bin" is "keep the
    lowest id".
    """
    kept: Dict[int, Dict[int, int]] = {}
    seen: Set[Tuple[str, Tuple[Tuple[int, int], ...]]] = set()
    for cid in sorted(supported):
        evidence = (candidate_items[cid].label, tuple(sorted(supported[cid].items())))
        if evidence in seen:
            continue
        seen.add(evidence)
        kept[cid] = supported[cid]
    return kept


def _canonicalize(
    supported: Dict[TimedItem, Dict[int, FrozenSet[int]]]
) -> Dict[TimedItem, Dict[int, FrozenSet[int]]]:
    """Drop candidates that duplicate a same-label candidate's evidence.

    Two candidates with the same label whose supporter→positions maps are
    identical describe the same real-world behaviour seen through adjacent
    bins; keep the earliest bin.
    """
    kept: Dict[TimedItem, Dict[int, FrozenSet[int]]] = {}
    seen: Dict[Tuple[str, Tuple[Tuple[int, FrozenSet[int]], ...]], TimedItem] = {}
    for candidate in sorted(supported, key=candidate_sort_key):
        evidence = (candidate.label, tuple(sorted(supported[candidate].items())))
        if evidence in seen:
            continue
        seen[evidence] = candidate
        kept[candidate] = supported[candidate]
    return kept
