"""Inverted match index for the modified PrefixSpan (the fast phase-2 core).

The reference miner (:func:`repro.mining.modified.modified_prefixspan_reference`)
re-scans the *entire* candidate pool at every recursion node and re-matches
each candidate against every projected sequence with an O(|seq|) inner loop.
Almost all of that work is redundant: :class:`~repro.mining.modified.FlexibleMatcher`
is *prefix-independent* — whether a candidate pattern item matches a sequence
item never depends on the prefix mined so far.  Only the *gap constraint*
looks backwards, and it only needs the bin of the item the projection resumed
after, which is a cheap position filter.

:class:`MatchIndex` therefore precomputes, once per user database,

``candidate → {sequence index → sorted match positions}``

by a single pass over the sequence items: each item ``(bin, label)`` matches
exactly the candidates ``(b, L)`` with ``L`` among the item label's taxonomy
ancestors (including itself) and ``b`` within the circular time tolerance of
``bin``.  Enumerating those directly costs
``O(total_items × |ancestors| × (2·tol + 1))`` — independent of the recursion
depth — instead of ``O(|pool| × total_items)`` per recursion node.

At grow time the miner then

* iterates only candidates that occur in the projected sequences at all
  (via the per-sequence candidate lists), never the global pool;
* prunes a candidate as soon as its remaining possible supporters cannot
  reach ``min_count`` (the remaining-support upper bound);
* resolves admissible match positions with a binary search over the sorted
  position list instead of rescanning the postfix.

The index is only ever consulted for candidates drawn from the same global
pool the reference miner uses (observed ``(bin, ancestor-label)`` items), so
the mined output is bit-for-bit identical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..sequences.items import TimedItem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .modified import FlexibleMatcher

__all__ = ["MatchIndex", "build_match_index"]

_EMPTY: FrozenSet[int] = frozenset()


class MatchIndex:
    """Per-database inverted index of candidate-item match positions.

    Parameters
    ----------
    sequences:
        The database's item sequences (one per user-day).
    matcher:
        The flexible matcher whose ``matches`` predicate the index inverts.
        Matching must be prefix-independent (it is: time tolerance and label
        ancestry look at one item only).
    """

    __slots__ = ("sequences", "pool", "positions", "seq_candidates", "_suffix_cache")

    def __init__(
        self, sequences: Sequence[Tuple[TimedItem, ...]], matcher: "FlexibleMatcher"
    ) -> None:
        self.sequences: Tuple[Tuple[TimedItem, ...], ...] = tuple(sequences)

        # The candidate pool mirrors the reference miner exactly: every
        # observed item plus its taxonomy-ancestor relabelings, at the
        # *observed* bin (time tolerance widens matching, not the pool).
        pool: Set[TimedItem] = set()
        distinct: Set[TimedItem] = set()
        for seq in self.sequences:
            for item in seq:
                if item not in distinct:
                    distinct.add(item)
                    pool.update(matcher.candidates_for(item))
        self.pool: FrozenSet[TimedItem] = frozenset(pool)

        # Circular tolerance offsets, deduplicated (2·tol+1 may wrap past
        # n_bins, in which case every bin is within tolerance).
        n_bins = matcher.n_bins
        tol = matcher.time_tolerance_bins
        if 2 * tol + 1 >= n_bins:
            offsets: Tuple[int, ...] = tuple(range(n_bins))
        else:
            offsets = tuple(sorted({d % n_bins for d in range(-tol, tol + 1)}))

        # Per *distinct* item, the pool candidates matching it: candidates
        # (bin ± tol, ancestor-of-label) — item vocabularies are tiny
        # compared to total occurrences, so resolving the tolerance window
        # and ancestor chain once per distinct item is nearly free.
        matched_by: Dict[TimedItem, Tuple[TimedItem, ...]] = {}
        # matched_by is consumed by key lookup only, and each item's candidate
        # tuple is built deterministically, so hash order here is unobservable.
        for item in distinct:  # crowdlint: disable=CW203
            seen: Set[TimedItem] = set()
            candidates: List[TimedItem] = []
            for label in matcher._ancestors_of(item.label):
                for offset in offsets:
                    candidate = TimedItem((item.bin + offset) % n_bins, label)
                    if candidate in pool and candidate not in seen:
                        seen.add(candidate)
                        candidates.append(candidate)
            matched_by[item] = tuple(candidates)

        # One pass over the data records each occurrence's position under
        # every candidate it realizes.  Each candidate appears at most once
        # per occurrence (deduped above), so position lists come out
        # strictly increasing.
        grouped: Dict[TimedItem, Dict[int, List[int]]] = {}
        for seq_index, seq in enumerate(self.sequences):
            for position, item in enumerate(seq):
                for candidate in matched_by[item]:
                    per_seq = grouped.setdefault(candidate, {})
                    plist = per_seq.get(seq_index)
                    if plist is None:
                        per_seq[seq_index] = [position]
                    else:
                        plist.append(position)

        #: candidate → {sequence index → strictly increasing match positions}.
        self.positions: Dict[TimedItem, Dict[int, List[int]]] = grouped

        #: sequence index → candidates with at least one match in it, in a
        #: fixed (but arbitrary) order — the grow-time tally iterates these.
        seq_candidates: List[List[TimedItem]] = [[] for _ in self.sequences]
        for candidate, per_seq in self.positions.items():
            for seq_index in per_seq:
                seq_candidates[seq_index].append(candidate)
        self.seq_candidates: Tuple[Tuple[TimedItem, ...], ...] = tuple(
            tuple(candidates) for candidates in seq_candidates
        )

        # (candidate, seq, suffix offset) → resume-position frozenset.  The
        # same suffix is requested at many recursion nodes; the sets are
        # immutable, so sharing them across nodes is free.
        self._suffix_cache: Dict[Tuple[TimedItem, int, int], FrozenSet[int]] = {}

    # ------------------------------------------------------------------ api

    def n_candidates(self) -> int:
        """Number of pool candidates with at least one match anywhere."""
        return len(self.positions)

    def supporters_of(
        self,
        candidate: TimedItem,
        projections: Dict[int, FrozenSet[int]],
        max_gap_bins: Optional[int],
        min_count: int,
        upper: int,
    ) -> Optional[Dict[int, FrozenSet[int]]]:
        """Exact supporter → resume-position map over a projection.

        ``upper`` is the number of projected sequences the candidate occurs
        in at all (the caller's tally); the scan aborts with ``None`` as
        soon as the remaining sequences cannot lift the supporter count to
        ``min_count``.  Returns ``None`` for an infrequent candidate.
        """
        pos_map = self.positions[candidate]
        suffix_cache = self._suffix_cache
        supporters: Dict[int, FrozenSet[int]] = {}
        remaining = upper
        # Scan whichever side is smaller: a rare candidate over a broad
        # projection walks its few position lists; a common one over a deep
        # projection walks the projection.  Either way each sequence visited
        # is in the intersection, so the supporter set is identical.
        if len(pos_map) < len(projections):
            pairs = (
                (seq_index, projections.get(seq_index), plist)
                for seq_index, plist in pos_map.items()
            )
        else:
            pairs = (
                (seq_index, starts, pos_map.get(seq_index))
                for seq_index, starts in projections.items()
            )
        for seq_index, starts, plist in pairs:
            if plist is None or starts is None:
                continue
            remaining -= 1
            if max_gap_bins is None:
                lo = bisect_left(plist, min(starts))
                if lo < len(plist):
                    key = (candidate, seq_index, lo)
                    positions = suffix_cache.get(key)
                    if positions is None:
                        positions = suffix_cache[key] = frozenset(
                            k + 1 for k in plist[lo:]
                        )
                else:
                    positions = _EMPTY
            else:
                positions = self._gap_positions(
                    plist, self.sequences[seq_index], starts, max_gap_bins
                )
            if positions:
                supporters[seq_index] = positions
            elif len(supporters) + remaining < min_count:
                return None  # remaining-support upper bound: cannot qualify
        return supporters if len(supporters) >= min_count else None

    @staticmethod
    def _gap_positions(
        plist: Sequence[int],
        seq: Tuple[TimedItem, ...],
        starts: FrozenSet[int],
        max_gap_bins: int,
    ) -> FrozenSet[int]:
        out: Set[int] = set()
        for start in starts:
            prev_bin = seq[start - 1].bin if start > 0 else None
            for k in plist[bisect_left(plist, start):]:
                if prev_bin is not None and seq[k].bin - prev_bin > max_gap_bins:
                    continue
                out.add(k + 1)
        return frozenset(out)

    def resume_positions(
        self,
        candidate: TimedItem,
        seq_index: int,
        starts: FrozenSet[int],
        max_gap_bins: Optional[int],
    ) -> FrozenSet[int]:
        """Resume positions after every admissible match of ``candidate``.

        Mirrors the reference miner's ``all_match_positions`` exactly:
        a match at position ``k`` reached from resume point ``start`` is
        admissible when ``k >= start`` and, under a gap constraint, the
        matched item's bin is within ``max_gap_bins`` of the bin of the item
        just before ``start`` (the one the prefix last consumed).
        """
        per_seq = self.positions.get(candidate)
        if per_seq is None:
            return _EMPTY
        plist = per_seq.get(seq_index)
        if plist is None:
            return _EMPTY
        if max_gap_bins is None:
            # Gap-free: admissibility is just k >= min(starts).
            lo = bisect_left(plist, min(starts))
            return frozenset(k + 1 for k in plist[lo:])
        return self._gap_positions(
            plist, self.sequences[seq_index], starts, max_gap_bins
        )


def build_match_index(
    sequences: Sequence[Tuple[TimedItem, ...]], matcher: "FlexibleMatcher"
) -> MatchIndex:
    """Build the inverted match index for one user database."""
    return MatchIndex(sequences, matcher)
