"""Inverted match index for the modified PrefixSpan (the fast phase-2 core).

The reference miner (:func:`repro.mining.modified.modified_prefixspan_reference`)
re-scans the *entire* candidate pool at every recursion node and re-matches
each candidate against every projected sequence with an O(|seq|) inner loop.
Almost all of that work is redundant: :class:`~repro.mining.modified.FlexibleMatcher`
is *prefix-independent* — whether a candidate pattern item matches a sequence
item never depends on the prefix mined so far.  Only the *gap constraint*
looks backwards, and it only needs the bin of the item the projection resumed
after, which is a cheap position filter.

:class:`MatchIndex` therefore precomputes, once per user database,

``candidate id → {sequence index → sorted match positions}``

by a single pass over the interned sequence ids: each distinct item id
matches exactly the candidates ``(b, L)`` with ``L`` among the item label's
taxonomy ancestors (including itself) and ``b`` within the circular time
tolerance of the item's bin.  Enumerating those costs
``O(distinct_items × |ancestors| × (2·tol + 1))`` plus one O(1) table append
per occurrence — independent of the recursion depth — instead of
``O(|pool| × total_items)`` per recursion node.

Interned representation (this is the hot path)
----------------------------------------------
Everything the grow loop touches is an int:

* **Candidate ids** are dense ints from a private :class:`ItemVocab` built
  over the candidate pool.  Because the vocabulary sorts timed items by
  ``(label, bin)``, *candidate id order is exactly*
  :func:`~repro.mining.base.candidate_sort_key` *order* — sorting plain ints
  reproduces the reference miner's canonical expansion order for free.
* **Position sets are int bitmasks**: bit ``p`` set means "resume at
  position ``p``".  User-day sequences are short (tens of items), so a
  whole projection entry packs into one machine word — union is ``|``,
  emptiness is ``== 0``, and the minimum start is one bit trick.  (For
  databases whose sequences overflow word packing the masks degrade
  gracefully to Python long ints; a ``frozenset[int]`` variant benchmarked
  slower at every realistic sequence length, see docs/performance.md.)
* **Suffix masks are precomputed per (candidate, sequence)**: one backward
  pass builds the resume mask for *every* suffix offset at once, so the
  gap-free fast path is a binary search plus a list index — no set or mask
  is ever rebuilt at grow time.

The index is only ever consulted for candidates drawn from the same global
pool the reference miner uses (observed ``(bin, ancestor-label)`` items), so
the mined output — decoded back to :class:`TimedItem` at the emission
boundary — is bit-for-bit identical.
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..sequences.database import SequenceDatabase
from ..sequences.items import TimedItem
from ..sequences.vocab import ItemVocab

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .modified import FlexibleMatcher

__all__ = ["MatchIndex", "build_match_index"]


class MatchIndex:
    """Per-database inverted index of candidate-item match positions.

    Parameters
    ----------
    encoded:
        The database's interned sequences (one ``array('i')`` of item ids
        per user-day).
    vocab:
        The :class:`ItemVocab` those ids refer to.
    matcher:
        The flexible matcher whose ``matches`` predicate the index inverts.
        Matching must be prefix-independent (it is: time tolerance and label
        ancestry look at one item only).
    """

    __slots__ = (
        "seq_lens",
        "vocab",
        "candidate_vocab",
        "candidate_items",
        "positions",
        "seq_candidates",
        "seq_bins",
        "n_matched",
        "_suffix_masks",
    )

    def __init__(
        self,
        encoded: Sequence[array],
        vocab: ItemVocab[TimedItem],
        matcher: "FlexibleMatcher",
    ) -> None:
        encoded: Tuple[array, ...] = (
            encoded if isinstance(encoded, tuple) else tuple(encoded)
        )
        #: Per-sequence lengths — all the index needs from the raw data
        #: after construction (the arrays themselves are not retained).
        self.seq_lens: array = array("i", [len(arr) for arr in encoded])
        self.vocab = vocab

        # The candidate pool mirrors the reference miner exactly: every
        # observed item plus its taxonomy-ancestor relabelings, at the
        # *observed* bin (time tolerance widens matching, not the pool).
        distinct_ids: Set[int] = set()
        for arr in encoded:
            distinct_ids.update(arr)
        pool: Set[TimedItem] = set()
        decode = vocab.decode
        for item_id in distinct_ids:
            pool.update(matcher.candidates_for(decode(item_id)))

        #: Candidate pool interned to dense ids; (label, bin)-sorted, so id
        #: order *is* candidate_sort_key order.
        self.candidate_vocab: ItemVocab[TimedItem] = ItemVocab(pool)
        #: id → shared TimedItem instance (the decode table for emission).
        self.candidate_items: Tuple[TimedItem, ...] = self.candidate_vocab.items
        n_candidates = len(self.candidate_items)

        # Circular tolerance offsets, deduplicated (2·tol+1 may wrap past
        # n_bins, in which case every bin is within tolerance).
        n_bins = matcher.n_bins
        tol = matcher.time_tolerance_bins
        if 2 * tol + 1 >= n_bins:
            offsets: Tuple[int, ...] = tuple(range(n_bins))
        else:
            offsets = tuple(sorted({d % n_bins for d in range(-tol, tol + 1)}))

        # Per *distinct* item id, the pool candidate ids matching it:
        # candidates (bin ± tol, ancestor-of-label) — item vocabularies are
        # tiny compared to total occurrences, so resolving the tolerance
        # window and ancestor chain once per distinct item is nearly free.
        encode_candidate = self.candidate_vocab.get
        matched_by: Dict[int, array] = {}
        # matched_by is consumed by key lookup only, and each item's candidate
        # array is built deterministically, so hash order here is unobservable.
        for item_id in distinct_ids:  # crowdlint: disable=CW203
            item = decode(item_id)
            seen: Set[int] = set()
            candidate_ids: List[int] = []
            item_bin = item.bin
            # Boundary decode/re-encode: runs once per *distinct* item at
            # build time, never per occurrence or per recursion node.
            for label in matcher._ancestors_of(item.label):
                for offset in offsets:
                    # This *is* the sanctioned boundary decode (see the
                    # comment above): once per distinct item at build time.
                    cid = encode_candidate(TimedItem((item_bin + offset) % n_bins, label))  # crowdlint: disable=CW505
                    if cid >= 0 and cid not in seen:
                        seen.add(cid)
                        candidate_ids.append(cid)
            matched_by[item_id] = array("i", candidate_ids)

        # One pass over the data records each occurrence's position under
        # every candidate it realizes.  Each candidate appears at most once
        # per occurrence (deduped above), so position lists come out
        # strictly increasing.
        positions: List[Dict[int, List[int]]] = [{} for _ in range(n_candidates)]
        for seq_index, arr in enumerate(encoded):
            for position, item_id in enumerate(arr):
                for cid in matched_by[item_id]:
                    per_seq = positions[cid]
                    plist = per_seq.get(seq_index)
                    if plist is None:
                        per_seq[seq_index] = [position]
                    else:
                        plist.append(position)

        #: candidate id → {sequence index → strictly increasing positions}.
        self.positions: Tuple[Dict[int, List[int]], ...] = tuple(positions)
        #: Candidates with at least one match anywhere (pool entries whose
        #: bin/label combination never occurs stay unmatched).
        self.n_matched: int = sum(1 for per_seq in positions if per_seq)

        #: sequence index → candidate ids with at least one match in it, in
        #: ascending id order — the grow-time tally iterates these.
        seq_candidates: List[List[int]] = [[] for _ in encoded]
        for cid, per_seq in enumerate(positions):
            for seq_index in per_seq:
                seq_candidates[seq_index].append(cid)
        self.seq_candidates: Tuple[array, ...] = tuple(
            array("i", cids) for cids in seq_candidates
        )

        #: sequence index → per-position time bins (the gap constraint's
        #: only backward look); shares the sequences' id arrays' shape.
        bin_of_item = array(
            "i", [getattr(item, "bin", 0) for item in vocab.items]
        )
        self.seq_bins: Tuple[array, ...] = tuple(
            array("i", [bin_of_item[item_id] for item_id in arr])
            for arr in encoded
        )

        # (candidate id, seq index) → resume-mask-by-start table:
        # masks[s] has bit k+1 set for every match position k >= s, so the
        # gap-free exact scan is a single list index at the projection's
        # minimum start.  Built lazily in one backward pass per pair (upper-
        # bound-pruned candidates never pay for it), shared across every
        # recursion node that projects into the same pair.
        self._suffix_masks: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ api

    @property
    def pool(self) -> FrozenSet[TimedItem]:
        """The candidate pool as items (mirrors the reference miner's)."""
        return frozenset(self.candidate_items)

    def n_candidates(self) -> int:
        """Number of pool candidates with at least one match anywhere."""
        return self.n_matched

    def suffix_masks(self, cid: int, seq_index: int, plist: List[int]) -> List[int]:
        """Resume-mask-by-start table for one (candidate, sequence) pair."""
        key = (cid, seq_index)
        masks = self._suffix_masks.get(key)
        if masks is None:
            masks = self._suffix_masks[key] = _masks_by_start(
                plist, self.seq_lens[seq_index]
            )
        return masks

    def supporters_of(
        self,
        cid: int,
        projections: Dict[int, int],
        max_gap_bins: Optional[int],
        min_count: int,
        upper: int,
    ) -> Optional[Dict[int, int]]:
        """Exact supporter → resume-mask map over a projection.

        ``projections`` maps sequence index → start-position bitmask.
        ``upper`` is the number of projected sequences the candidate occurs
        in at all (the caller's tally); the scan aborts with ``None`` as
        soon as the remaining sequences cannot lift the supporter count to
        ``min_count``.  Returns ``None`` for an infrequent candidate.

        The two scan directions (below) visit exactly the intersection of
        the candidate's sequences with the projection, so the supporter set
        is identical either way; we walk whichever side is smaller — a rare
        candidate over a broad projection walks its few position lists, a
        common one over a deep projection walks the projection.
        """
        pos_map = self.positions[cid]
        supporters: Dict[int, int] = {}
        remaining = upper
        if max_gap_bins is None:
            suffix = self._suffix_masks
            seq_lens = self.seq_lens
            if len(pos_map) < len(projections):
                projections_get = projections.get
                for seq_index, plist in pos_map.items():
                    starts = projections_get(seq_index)
                    if starts is None:
                        continue
                    remaining -= 1
                    key = (cid, seq_index)
                    masks = suffix.get(key)
                    if masks is None:
                        masks = suffix[key] = _masks_by_start(
                            plist, seq_lens[seq_index]
                        )
                    mask = masks[(starts & -starts).bit_length() - 1]
                    if mask:
                        supporters[seq_index] = mask
                    elif len(supporters) + remaining < min_count:
                        return None  # remaining-support upper bound
            else:
                pos_get = pos_map.get
                for seq_index, starts in projections.items():
                    plist = pos_get(seq_index)
                    if plist is None:
                        continue
                    remaining -= 1
                    key = (cid, seq_index)
                    masks = suffix.get(key)
                    if masks is None:
                        masks = suffix[key] = _masks_by_start(
                            plist, seq_lens[seq_index]
                        )
                    mask = masks[(starts & -starts).bit_length() - 1]
                    if mask:
                        supporters[seq_index] = mask
                    elif len(supporters) + remaining < min_count:
                        return None
        else:
            seq_bins = self.seq_bins
            if len(pos_map) < len(projections):
                projections_get = projections.get
                for seq_index, plist in pos_map.items():
                    starts = projections_get(seq_index)
                    if starts is None:
                        continue
                    remaining -= 1
                    mask = _gap_mask(plist, seq_bins[seq_index], starts, max_gap_bins)
                    if mask:
                        supporters[seq_index] = mask
                    elif len(supporters) + remaining < min_count:
                        return None
            else:
                pos_get = pos_map.get
                for seq_index, starts in projections.items():
                    plist = pos_get(seq_index)
                    if plist is None:
                        continue
                    remaining -= 1
                    mask = _gap_mask(plist, seq_bins[seq_index], starts, max_gap_bins)
                    if mask:
                        supporters[seq_index] = mask
                    elif len(supporters) + remaining < min_count:
                        return None
        return supporters if len(supporters) >= min_count else None

    def resume_positions(
        self,
        cid: int,
        seq_index: int,
        starts: int,
        max_gap_bins: Optional[int],
    ) -> int:
        """Resume mask after every admissible match of candidate ``cid``.

        Mirrors the reference miner's ``all_match_positions`` exactly:
        a match at position ``k`` reached from resume point ``start`` is
        admissible when ``k >= start`` and, under a gap constraint, the
        matched item's bin is within ``max_gap_bins`` of the bin of the item
        just before ``start`` (the one the prefix last consumed).
        """
        plist = self.positions[cid].get(seq_index)
        if plist is None or not starts:
            return 0
        if max_gap_bins is None:
            min_start = (starts & -starts).bit_length() - 1
            return self.suffix_masks(cid, seq_index, plist)[min_start]
        return _gap_mask(plist, self.seq_bins[seq_index], starts, max_gap_bins)


def _masks_by_start(plist: List[int], seq_len: int) -> List[int]:
    """Resume-mask table indexed by start position.

    ``masks[s]`` has bit ``k + 1`` set for every match position ``k >= s``
    (``masks[seq_len]`` is empty).  One backward pass builds the whole
    table, so gap-free projection is a list index — no per-node set or mask
    construction, no binary search.
    """
    masks = [0] * (seq_len + 1)
    acc = 0
    j = len(plist) - 1
    for s in range(seq_len - 1, -1, -1):
        if j >= 0 and plist[j] == s:
            acc |= 1 << (s + 1)
            j -= 1
        masks[s] = acc
    return masks


def _gap_mask(
    plist: List[int], bins: array, starts: int, max_gap_bins: int
) -> int:
    """Admissible resume mask under the gap constraint.

    Semantics mirror the reference miner: for each start, matches at
    ``k >= start`` qualify unless the (non-circular) bin distance from the
    item just before the start exceeds ``max_gap_bins``.
    """
    out = 0
    remaining = starts
    while remaining:
        low_bit = remaining & -remaining
        remaining ^= low_bit
        start = low_bit.bit_length() - 1
        prev_bin = bins[start - 1] if start > 0 else None
        for k in plist[bisect_left(plist, start):]:
            if prev_bin is not None and bins[k] - prev_bin > max_gap_bins:
                continue
            out |= 1 << (k + 1)
    return out


# Per-database index memo, keyed weakly on the database so entries die with
# it.  The inner key is everything the index depends on besides the data:
# the matcher's structural knobs (support thresholds do NOT shape the index,
# so a min_support sweep over one database reuses one index — and its
# accumulated suffix-mask tables — across every run).
_INDEX_MEMO: "weakref.WeakKeyDictionary[SequenceDatabase, Dict[tuple, MatchIndex]]"
_INDEX_MEMO = None  # type: ignore[assignment]


def _matcher_signature(matcher: "FlexibleMatcher") -> tuple:
    taxonomy = matcher.taxonomy if matcher.include_ancestor_labels else None
    return (
        matcher.n_bins,
        matcher.time_tolerance_bins,
        matcher.include_ancestor_labels,
        taxonomy,
    )


def build_match_index(
    sequences: Union[SequenceDatabase, Sequence[Tuple[TimedItem, ...]]],
    matcher: "FlexibleMatcher",
) -> MatchIndex:
    """Build (or reuse) the inverted match index for one user database.

    Accepts either a :class:`SequenceDatabase` — whose interned arrays and
    vocabulary are adopted directly, no re-encoding, and whose index is
    memoized per matcher configuration — or raw item-tuple sequences, which
    are interned here first (and never memoized: there is nothing stable to
    key on).
    """
    global _INDEX_MEMO
    if isinstance(sequences, SequenceDatabase):
        if _INDEX_MEMO is None:
            _INDEX_MEMO = weakref.WeakKeyDictionary()
        per_db = _INDEX_MEMO.get(sequences)
        if per_db is None:
            per_db = _INDEX_MEMO[sequences] = {}
        signature = _matcher_signature(matcher)
        index = per_db.get(signature)
        if index is None:
            index = per_db[signature] = MatchIndex(
                sequences.encoded, sequences.vocab, matcher
            )
        return index
    seqs = tuple(tuple(seq) for seq in sequences)
    vocab: ItemVocab[TimedItem] = ItemVocab(item for seq in seqs for item in seq)
    encoded = tuple(vocab.encode_sequence(seq) for seq in seqs)
    return MatchIndex(encoded, vocab, matcher)
