"""Sequential-pattern mining: modified PrefixSpan plus baselines and tools."""

from .base import MiningLimits, SequentialPattern, sort_patterns, sorted_candidates
from .bruteforce import bruteforce_mine
from .filters import closed_patterns, maximal_patterns, top_k_patterns
from .gsp import gsp
from .incremental import IncrementalPatternStore
from .index import MatchIndex, build_match_index
from .interop import (
    ItemCodec,
    read_spmf_database,
    read_spmf_patterns,
    write_spmf_database,
    write_spmf_patterns,
)
from .modified import (
    ExactMatcher,
    FlexibleMatcher,
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
    modified_prefixspan_reference,
)
from .prefixspan import prefixspan
from .stats import MiningAggregate, UserMiningStats, aggregate_stats, user_mining_stats

__all__ = [
    "ExactMatcher",
    "FlexibleMatcher",
    "IncrementalPatternStore",
    "ItemCodec",
    "MatchIndex",
    "MiningAggregate",
    "MiningLimits",
    "ModifiedPrefixSpanConfig",
    "SequentialPattern",
    "UserMiningStats",
    "aggregate_stats",
    "bruteforce_mine",
    "build_match_index",
    "closed_patterns",
    "gsp",
    "maximal_patterns",
    "modified_prefixspan",
    "modified_prefixspan_reference",
    "prefixspan",
    "read_spmf_database",
    "read_spmf_patterns",
    "sort_patterns",
    "sorted_candidates",
    "top_k_patterns",
    "user_mining_stats",
    "write_spmf_database",
    "write_spmf_patterns",
]
