"""Sequential-pattern mining: modified PrefixSpan plus baselines and tools."""

from .base import MiningLimits, SequentialPattern, sort_patterns
from .bruteforce import bruteforce_mine
from .filters import closed_patterns, maximal_patterns, top_k_patterns
from .gsp import gsp
from .incremental import IncrementalPatternStore
from .interop import (
    ItemCodec,
    read_spmf_database,
    read_spmf_patterns,
    write_spmf_database,
    write_spmf_patterns,
)
from .modified import (
    ExactMatcher,
    FlexibleMatcher,
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
)
from .prefixspan import prefixspan
from .stats import MiningAggregate, UserMiningStats, aggregate_stats, user_mining_stats

__all__ = [
    "ExactMatcher",
    "FlexibleMatcher",
    "IncrementalPatternStore",
    "ItemCodec",
    "MiningAggregate",
    "MiningLimits",
    "ModifiedPrefixSpanConfig",
    "SequentialPattern",
    "UserMiningStats",
    "aggregate_stats",
    "bruteforce_mine",
    "closed_patterns",
    "gsp",
    "maximal_patterns",
    "modified_prefixspan",
    "prefixspan",
    "read_spmf_database",
    "read_spmf_patterns",
    "sort_patterns",
    "top_k_patterns",
    "user_mining_stats",
    "write_spmf_database",
    "write_spmf_patterns",
]
