"""Place-category taxonomy: the venue → labeled-place abstraction."""

from .category import AbstractionLevel, Category, CategoryTree, UnknownCategoryError, subtree_names
from .foursquare import DEFAULT_TAXONOMY_SPEC, build_default_taxonomy, leaf_names, root_names

__all__ = [
    "AbstractionLevel",
    "Category",
    "CategoryTree",
    "DEFAULT_TAXONOMY_SPEC",
    "UnknownCategoryError",
    "build_default_taxonomy",
    "leaf_names",
    "root_names",
    "subtree_names",
]
