"""Hierarchical place-category taxonomy.

CrowdWeb's key idea is to abstract raw venues into labeled *places* so that
"Thai Express", "Seasoning Thai" and "Thai Pothong" all contribute to one
"Thai Restaurant" (or, one level up, "Eatery") pattern.  This module provides
the tree structure; :mod:`repro.taxonomy.foursquare` ships a built-in
Foursquare-style instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = [
    "AbstractionLevel",
    "Category",
    "CategoryTree",
    "UnknownCategoryError",
    "subtree_names",
]


class UnknownCategoryError(KeyError):
    """Raised when a category id or name is not present in the tree."""


class AbstractionLevel(Enum):
    """How aggressively venues are abstracted before mining.

    ``VENUE``
        No abstraction: items are raw venue ids (the strawman the paper
        argues against — patterns become invisible).
    ``LEAF``
        Leaf category, e.g. "Thai Restaurant".
    ``ROOT``
        Top-level category, e.g. "Eatery"/"Food" (the paper's crowd view).
    """

    VENUE = "venue"
    LEAF = "leaf"
    ROOT = "root"


@dataclass
class Category:
    """One node in the taxonomy tree."""

    category_id: str
    name: str
    parent_id: Optional[str] = None
    children_ids: List[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def is_leaf(self) -> bool:
        return not self.children_ids


class CategoryTree:
    """A forest of category hierarchies with id and name lookup.

    Node ids are arbitrary stable strings; names must be unique per tree so
    datasets that only carry names (the Foursquare dump carries both) can be
    resolved too.
    """

    def __init__(self) -> None:
        self._by_id: Dict[str, Category] = {}
        self._by_name: Dict[str, str] = {}

    # ------------------------------------------------------------- building

    def add(self, category_id: str, name: str, parent_id: Optional[str] = None) -> Category:
        """Insert a node; parent must already exist."""
        if category_id in self._by_id:
            raise ValueError(f"duplicate category id {category_id!r}")
        key = name.strip().lower()
        if key in self._by_name:
            raise ValueError(f"duplicate category name {name!r}")
        if parent_id is not None and parent_id not in self._by_id:
            raise UnknownCategoryError(parent_id)
        node = Category(category_id=category_id, name=name, parent_id=parent_id)
        self._by_id[category_id] = node
        self._by_name[key] = category_id
        if parent_id is not None:
            self._by_id[parent_id].children_ids.append(category_id)
        return node

    # -------------------------------------------------------------- lookup

    def get(self, category_id: str) -> Category:
        try:
            return self._by_id[category_id]
        except KeyError:
            raise UnknownCategoryError(category_id) from None

    def get_by_name(self, name: str) -> Category:
        try:
            return self._by_id[self._by_name[name.strip().lower()]]
        except KeyError:
            raise UnknownCategoryError(name) from None

    def __contains__(self, category_id: str) -> bool:
        return category_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Category]:
        return iter(self._by_id.values())

    def resolve(self, id_or_name: str) -> Category:
        """Find a category by id, falling back to name lookup."""
        if id_or_name in self._by_id:
            return self._by_id[id_or_name]
        return self.get_by_name(id_or_name)

    # ----------------------------------------------------------- hierarchy

    def root_of(self, category_id: str) -> Category:
        """The top-level ancestor of a node (the node itself if it is a root)."""
        node = self.get(category_id)
        while node.parent_id is not None:
            node = self._by_id[node.parent_id]
        return node

    def ancestors(self, category_id: str) -> List[Category]:
        """Path from the node's parent up to its root, nearest first."""
        out = []
        node = self.get(category_id)
        while node.parent_id is not None:
            node = self._by_id[node.parent_id]
            out.append(node)
        return out

    def descendants(self, category_id: str) -> List[Category]:
        """All nodes strictly below ``category_id`` (pre-order)."""
        out: List[Category] = []
        stack = list(reversed(self.get(category_id).children_ids))
        while stack:
            node = self._by_id[stack.pop()]
            out.append(node)
            stack.extend(reversed(node.children_ids))
        return out

    def leaves(self) -> List[Category]:
        return [c for c in self._by_id.values() if c.is_leaf]

    def roots(self) -> List[Category]:
        return [c for c in self._by_id.values() if c.is_root]

    def depth(self, category_id: str) -> int:
        """0 for roots, 1 for their children, and so on."""
        return len(self.ancestors(category_id))

    def is_ancestor(self, ancestor_id: str, descendant_id: str) -> bool:
        """True when ``ancestor_id`` lies on ``descendant_id``'s path to its root."""
        node = self.get(descendant_id)
        while node.parent_id is not None:
            if node.parent_id == ancestor_id:
                return True
            node = self._by_id[node.parent_id]
        return False

    def abstract(self, category_id: str, level: AbstractionLevel) -> str:
        """The label a venue of ``category_id`` gets at ``level``.

        ``VENUE`` is handled by the caller (it needs the venue id, not the
        category); asking for it here is an error.
        """
        if level is AbstractionLevel.VENUE:
            raise ValueError("VENUE-level abstraction needs the venue id, not a category")
        if level is AbstractionLevel.ROOT:
            return self.root_of(category_id).name
        return self.get(category_id).name

    def lowest_common_ancestor(self, a_id: str, b_id: str) -> Optional[Category]:
        """Deepest shared ancestor (inclusive), or ``None`` across different roots."""
        a_path = [self.get(a_id)] + self.ancestors(a_id)
        b_ids = {c.category_id for c in [self.get(b_id)] + self.ancestors(b_id)}
        for node in a_path:
            if node.category_id in b_ids:
                return node
        return None

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ValueError` on corruption."""
        for node in self._by_id.values():
            for child_id in node.children_ids:
                child = self._by_id.get(child_id)
                if child is None:
                    raise ValueError(f"{node.category_id} lists missing child {child_id}")
                if child.parent_id != node.category_id:
                    raise ValueError(f"{child_id} parent pointer disagrees with {node.category_id}")
        # Cycle check: every node must reach a root in <= len(tree) hops.
        limit = len(self._by_id)
        for node in self._by_id.values():
            cur = node
            hops = 0
            while cur.parent_id is not None:
                cur = self._by_id[cur.parent_id]
                hops += 1
                if hops > limit:
                    raise ValueError(f"cycle detected at {node.category_id}")


def subtree_names(tree: CategoryTree, root_name: str) -> List[str]:
    """Names of a root category and everything under it (helper for filters)."""
    root = tree.get_by_name(root_name)
    return [root.name] + [c.name for c in tree.descendants(root.category_id)]
