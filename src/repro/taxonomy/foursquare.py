"""A built-in Foursquare-style venue-category taxonomy.

The hierarchy mirrors the Foursquare category tree that the NYC check-in
dataset carries, using the root labels the paper itself uses in its examples
("Eatery", "Shops", ...).  Leaf categories are the labels attached to venues;
root categories are what the crowd view aggregates by.

The tree is intentionally paper-shaped rather than an exhaustive Foursquare
dump: every root has enough leaves to exercise abstraction (the "three Thai
restaurants → one pattern" motivation), and mid-level nodes exist where the
abstraction ablation needs them (e.g. Eatery → Asian Restaurant → Thai
Restaurant).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .category import CategoryTree

__all__ = ["build_default_taxonomy", "DEFAULT_TAXONOMY_SPEC", "root_names", "leaf_names"]

# root name -> {mid-level name or None -> [leaf names]}
# ``None`` keys attach leaves directly to the root.
DEFAULT_TAXONOMY_SPEC: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "Eatery": {
        "Asian Restaurant": (
            "Thai Restaurant",
            "Chinese Restaurant",
            "Japanese Restaurant",
            "Korean Restaurant",
            "Vietnamese Restaurant",
            "Indian Restaurant",
        ),
        "Western Restaurant": (
            "Italian Restaurant",
            "French Restaurant",
            "American Restaurant",
            "Mexican Restaurant",
            "Steakhouse",
        ),
        "Casual Food": (
            "Pizza Place",
            "Burger Joint",
            "Sandwich Place",
            "Deli",
            "Food Truck",
            "Fast Food Restaurant",
            "Bakery",
        ),
        "Cafe": (
            "Coffee Shop",
            "Tea Room",
            "Dessert Shop",
            "Ice Cream Shop",
        ),
    },
    "Shops": {
        "Grocery": (
            "Supermarket",
            "Convenience Store",
            "Farmers Market",
            "Liquor Store",
        ),
        "Retail": (
            "Clothing Store",
            "Shoe Store",
            "Department Store",
            "Electronics Store",
            "Bookstore",
            "Furniture Store",
            "Toy Store",
        ),
        "Services": (
            "Salon",
            "Laundry Service",
            "Bank",
            "Pharmacy",
            "Mobile Phone Shop",
            "Hardware Store",
        ),
        "Mall": ("Shopping Mall", "Outlet Mall"),
    },
    "Work": {
        "Office": (
            "Corporate Office",
            "Coworking Space",
            "Tech Startup",
            "Government Building",
            "Law Office",
        ),
        "Industry": ("Factory", "Warehouse", "Construction Site"),
        "Health Work": ("Hospital", "Medical Center", "Dental Office", "Veterinarian"),
    },
    "Residence": {
        "Housing": ("Home (private)", "Apartment Building", "Housing Development", "Dormitory"),
        "Lodging": ("Hotel", "Hostel", "Bed & Breakfast"),
    },
    "Education": {
        "Campus": (
            "University",
            "College Classroom",
            "College Library",
            "College Cafeteria",
        ),
        "School": ("High School", "Middle School", "Elementary School", "Language School"),
        "Library": ("Public Library", "Research Library"),
    },
    "Transport": {
        "Rail": ("Subway Station", "Train Station", "Light Rail Station"),
        "Road": ("Bus Stop", "Taxi Stand", "Parking Lot", "Gas Station", "Bridge"),
        "Air & Water": ("Airport", "Airport Terminal", "Ferry Terminal", "Pier"),
    },
    "Entertainment": {
        "Performance": ("Movie Theater", "Concert Hall", "Theater", "Comedy Club"),
        "Culture": ("Art Museum", "History Museum", "Art Gallery", "Aquarium", "Zoo"),
        "Games": ("Arcade", "Bowling Alley", "Casino", "Pool Hall"),
        "Sport Venue": ("Stadium", "Basketball Court", "Baseball Field", "Hockey Arena"),
    },
    "Nightlife": {
        "Bar": ("Dive Bar", "Cocktail Bar", "Wine Bar", "Sports Bar", "Pub", "Beer Garden"),
        "Club": ("Nightclub", "Lounge", "Karaoke Bar", "Jazz Club"),
    },
    "Outdoors": {
        "Green Space": ("Park", "Playground", "Botanical Garden", "Dog Run", "Plaza"),
        "Fitness": ("Gym", "Yoga Studio", "Cycling Track", "Swimming Pool", "Climbing Gym"),
        "Nature": ("Beach", "Trail", "Scenic Lookout", "River", "Lake"),
    },
}


def build_default_taxonomy() -> CategoryTree:
    """Construct the built-in taxonomy (deterministic ids, validated)."""
    tree = CategoryTree()
    for root_index, (root_name, groups) in enumerate(DEFAULT_TAXONOMY_SPEC.items()):
        root_id = f"4sq-root-{root_index:02d}"
        tree.add(root_id, root_name)
        for mid_index, (mid_name, leaf_names_) in enumerate(groups.items()):
            mid_id = f"{root_id}-m{mid_index:02d}"
            tree.add(mid_id, mid_name, parent_id=root_id)
            for leaf_index, leaf_name in enumerate(leaf_names_):
                tree.add(f"{mid_id}-l{leaf_index:02d}", leaf_name, parent_id=mid_id)
    tree.validate()
    return tree


def root_names() -> List[str]:
    """Names of the top-level categories in spec order."""
    return list(DEFAULT_TAXONOMY_SPEC)


def leaf_names() -> List[str]:
    """Names of every leaf category in spec order."""
    out: List[str] = []
    for groups in DEFAULT_TAXONOMY_SPEC.values():
        for leaves in groups.values():
            out.extend(leaves)
    return out
