"""Saving and loading mined pattern profiles.

Mining is the expensive phase; the platform wants to restart without
repeating it.  Profiles serialize to a single JSON document (schema
versioned) and load back into :class:`~repro.patterns.UserPatternProfile`
objects that behave identically — the crowd layer can be rebuilt from them
plus the dataset.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Union

from .mining import SequentialPattern
from .patterns import UserPatternProfile
from .sequences import TimeBinning, TimedItem
from .taxonomy import AbstractionLevel

__all__ = ["save_profiles", "load_profiles", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


def save_profiles(
    profiles: Mapping[str, UserPatternProfile], path: Union[str, Path]
) -> Path:
    """Write all profiles to one JSON file, atomically.

    The document is staged in a temporary file in the target directory and
    moved into place with :func:`os.replace`, so a crash mid-save can never
    truncate a profiles file the platform restarts from: readers see either
    the old complete document or the new complete document.
    """
    path = Path(path)
    if not profiles:
        raise ValueError("refusing to save an empty profile collection")
    binnings = {p.binning.width_hours for p in profiles.values()}
    levels = {p.level for p in profiles.values()}
    if len(binnings) != 1 or len(levels) != 1:
        raise ValueError("all profiles must share one binning and one level")
    payload = {
        "schema": SCHEMA_VERSION,
        # Both sets were just checked to hold exactly one element, so
        # next(iter(...)) is deterministic here.
        "bin_width_hours": next(iter(binnings)),  # crowdlint: disable=CW204
        "level": next(iter(levels)).value,  # crowdlint: disable=CW204
        "profiles": {
            user_id: {
                "n_days": profile.n_days,
                "patterns": [
                    {
                        "items": [[item.bin, item.label] for item in p.items],
                        "count": p.count,
                        "support": p.support,
                    }
                    for p in profile.patterns
                ],
            }
            for user_id, profile in sorted(profiles.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # Stage in the target directory (same filesystem) so the final rename
    # is atomic; clean the temporary up on any failure.
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_profiles(path: Union[str, Path]) -> Dict[str, UserPatternProfile]:
    """Load a profile collection written by :func:`save_profiles`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid profile JSON: {exc}") from exc
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported profile schema {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    try:
        binning = TimeBinning(float(payload["bin_width_hours"]))
        level = AbstractionLevel(payload["level"])
        out: Dict[str, UserPatternProfile] = {}
        for user_id, row in payload["profiles"].items():
            patterns = tuple(
                SequentialPattern(
                    items=tuple(TimedItem(int(b), str(l)) for b, l in p["items"]),
                    count=int(p["count"]),
                    support=float(p["support"]),
                )
                for p in row["patterns"]
            )
            out[user_id] = UserPatternProfile(
                user_id=user_id,
                patterns=patterns,
                n_days=int(row["n_days"]),
                binning=binning,
                level=level,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}: malformed profile document: {exc}") from exc
    return out
