"""Mobility analytics: the regularity/predictability metrics the paper's
motivation rests on (Gonzalez et al. 2008; Song et al. 2010)."""

from .metrics import (
    fit_zipf_exponent,
    UserMobilityMetrics,
    jump_lengths_m,
    lz_entropy_estimate,
    max_predictability,
    radius_of_gyration_m,
    random_entropy,
    regularity_by_hour,
    uncorrelated_entropy,
    user_mobility_metrics,
    visitation_frequencies,
)

__all__ = [
    "fit_zipf_exponent",
    "UserMobilityMetrics",
    "jump_lengths_m",
    "lz_entropy_estimate",
    "max_predictability",
    "radius_of_gyration_m",
    "random_entropy",
    "regularity_by_hour",
    "uncorrelated_entropy",
    "user_mobility_metrics",
    "visitation_frequencies",
]
