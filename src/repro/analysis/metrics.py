"""Classic human-mobility metrics (Gonzalez et al. 2008; Song et al. 2010).

The paper's introduction rests on two findings from this literature: human
mobility is *highly regular* (hence patterns exist) yet *hard to predict
exactly* (hence the 8–25% accuracy ceiling).  This module computes the
standard quantities behind both claims for any check-in dataset:

* radius of gyration and jump-length distribution,
* visitation-frequency Zipf profile,
* regularity R(t) — probability of being at the top location by hour,
* location entropies (random / temporal-uncorrelated / LZ-estimated real).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.records import CheckInDataset
from ..geo import GeoPoint, centroid, haversine_m

__all__ = [
    "radius_of_gyration_m",
    "jump_lengths_m",
    "visitation_frequencies",
    "regularity_by_hour",
    "random_entropy",
    "uncorrelated_entropy",
    "lz_entropy_estimate",
    "UserMobilityMetrics",
    "user_mobility_metrics",
    "fit_zipf_exponent",
    "max_predictability",
]


def radius_of_gyration_m(points: Sequence[GeoPoint]) -> float:
    """Root-mean-square distance from the trajectory's center of mass."""
    if not points:
        raise ValueError("radius of gyration of an empty trajectory is undefined")
    center = centroid(points)
    squared = [center.distance_to(p) ** 2 for p in points]
    return math.sqrt(sum(squared) / len(squared))


def jump_lengths_m(points: Sequence[GeoPoint]) -> List[float]:
    """Displacements between consecutive fixes, in meters."""
    return [a.distance_to(b) for a, b in zip(points, points[1:])]


def visitation_frequencies(labels: Sequence[str]) -> List[Tuple[str, float]]:
    """(location, visit share) sorted by rank — the Zipf profile.

    Gonzalez et al.: the k-th most visited location's share decays roughly
    as a power law; the top location alone absorbs a large share.
    """
    if not labels:
        return []
    counts = Counter(labels)
    total = sum(counts.values())
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(label, count / total) for label, count in ranked]


def regularity_by_hour(dataset: CheckInDataset, user_id: str) -> Dict[int, float]:
    """R(t): per local hour, the probability the user's check-in at that
    hour is at their single most-visited venue.

    The signature regularity finding: R(t) peaks at night/work hours and
    dips during midday flexibility windows.
    """
    records = dataset.for_user(user_id)
    if not records:
        return {}
    top_venue, _ = Counter(c.venue_id for c in records).most_common(1)[0]
    by_hour: Dict[int, List[bool]] = {}
    for c in records:
        by_hour.setdefault(c.local_time.hour, []).append(c.venue_id == top_venue)
    return {hour: sum(hits) / len(hits) for hour, hits in sorted(by_hour.items())}


def random_entropy(n_distinct_locations: int) -> float:
    """S_rand = log2 N — entropy if every known place were equally likely."""
    if n_distinct_locations < 1:
        raise ValueError("need at least one location")
    return math.log2(n_distinct_locations)


def uncorrelated_entropy(labels: Sequence[str]) -> float:
    """S_unc = -Σ p log2 p — visit-frequency entropy (order ignored)."""
    if not labels:
        raise ValueError("need at least one visit")
    counts = Counter(labels)
    total = sum(counts.values())
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def lz_entropy_estimate(sequence: Sequence[str]) -> float:
    """Lempel-Ziv estimator of the *real* (temporally correlated) entropy.

    Kontoyiannis et al. estimator used by Song et al. (2010):
    ``S_est = (n log2 n) / Σ Λ_i`` where Λ_i is the length of the shortest
    substring starting at i that never appeared before i (capped at the
    remaining length + 1).  Needs a reasonably long sequence to be
    meaningful; raises on sequences shorter than 2.
    """
    n = len(sequence)
    if n < 2:
        raise ValueError("LZ entropy needs a sequence of length >= 2")
    seq = list(sequence)
    lambdas = 0
    for i in range(n):
        # Shortest substring seq[i:i+k] not present in seq[:i].
        k = 1
        while i + k <= n:
            needle = seq[i:i + k]
            found = False
            for j in range(0, i - k + 1):
                if seq[j:j + k] == needle:
                    found = True
                    break
            if not found:
                break
            k += 1
        lambdas += min(k, n - i + 1)
    return (n / lambdas) * math.log2(n)


@dataclass(frozen=True)
class UserMobilityMetrics:
    """The standard per-user mobility profile."""

    user_id: str
    n_checkins: int
    n_distinct_venues: int
    radius_of_gyration_m: float
    median_jump_m: float
    top_location_share: float
    s_random: float
    s_uncorrelated: float
    s_estimated: float

    @property
    def predictability_bound(self) -> float:
        """Π_max from Fano's inequality on the estimated entropy."""
        return max_predictability(self.s_estimated, self.n_distinct_venues)


def max_predictability(entropy_bits: float, n_locations: int) -> float:
    """Solve Fano's inequality for the predictability upper bound Π_max.

    ``S = H(Π) + (1 - Π) log2(N - 1)`` with ``H`` the binary entropy.
    Bisection on Π ∈ [1/N, 1]; returns 1.0 when the entropy is ~0 and the
    uniform bound 1/N when the entropy saturates.
    """
    if n_locations < 1:
        raise ValueError("need at least one location")
    if n_locations == 1:
        return 1.0
    if entropy_bits <= 0:
        return 1.0

    def fano(p: float) -> float:
        h = 0.0
        for q in (p, 1.0 - p):
            if 0.0 < q < 1.0:
                h -= q * math.log2(q)
        return h + (1.0 - p) * math.log2(n_locations - 1)

    lo, hi = 1.0 / n_locations, 1.0 - 1e-12
    if entropy_bits >= fano(lo):
        return lo
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if fano(mid) > entropy_bits:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def user_mobility_metrics(dataset: CheckInDataset, user_id: str) -> UserMobilityMetrics:
    """Compute the full metric bundle for one user (venue-level)."""
    records = dataset.for_user(user_id)
    if len(records) < 2:
        raise ValueError(f"user {user_id!r} needs at least two check-ins")
    points = [c.location for c in records]
    venues = [c.venue_id for c in records]
    jumps = jump_lengths_m(points)
    freqs = visitation_frequencies(venues)
    n_venues = len({v for v in venues})
    return UserMobilityMetrics(
        user_id=user_id,
        n_checkins=len(records),
        n_distinct_venues=n_venues,
        radius_of_gyration_m=radius_of_gyration_m(points),
        median_jump_m=float(np.median(jumps)) if jumps else 0.0,
        top_location_share=freqs[0][1],
        s_random=random_entropy(n_venues),
        s_uncorrelated=uncorrelated_entropy(venues),
        s_estimated=lz_entropy_estimate(venues),
    )


def fit_zipf_exponent(frequencies: Sequence[Tuple[str, float]]) -> float:
    """Fit the visitation-frequency power law f_k ∝ k^(−ζ).

    Gonzalez et al. report ζ ≈ 1.2 for the visitation Zipf profile.  The
    exponent is the negated slope of a log-log least-squares fit over the
    ranked shares; needs at least three ranked locations.
    """
    if len(frequencies) < 3:
        raise ValueError("need at least three ranked locations to fit")
    from scipy.stats import linregress

    ranks = np.log(np.arange(1, len(frequencies) + 1, dtype=float))
    shares = np.array([share for _, share in frequencies], dtype=float)
    if np.any(shares <= 0):
        raise ValueError("shares must be positive")
    result = linregress(ranks, np.log(shares))
    return float(-result.slope)
