"""Ground-truth validation: do mined patterns recover the real routines?

The real Foursquare dump has no ground truth — nobody knows what the users'
actual routines were.  The synthetic substrate does: every agent carries
the exact routine that generated their check-ins.  This experiment measures
how faithfully phase 2 recovers it:

* **recall** — of the agent's high-probability routine stops, how many
  appear as a mined pattern item (right label at roughly the right hour)?
* **precision** — of the mined pattern items, how many correspond to a real
  routine stop?

This is the evaluation the paper could not run, and the strongest evidence
that the modified PrefixSpan detects *actual* behaviour rather than noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..data.synth import AgentProfile, GenerationResult, RoutineStop
from ..patterns import UserPatternProfile
from ..sequences import TimeBinning
from ..taxonomy import CategoryTree, UnknownCategoryError

__all__ = ["UserValidation", "ValidationSummary", "validate_against_ground_truth"]


@dataclass(frozen=True)
class UserValidation:
    """Pattern-vs-routine agreement for one user."""

    user_id: str
    n_truth_stops: int
    n_pattern_items: int
    matched_truth: int
    matched_items: int

    @property
    def recall(self) -> float:
        return self.matched_truth / self.n_truth_stops if self.n_truth_stops else 1.0

    @property
    def precision(self) -> float:
        return self.matched_items / self.n_pattern_items if self.n_pattern_items else 1.0


@dataclass(frozen=True)
class ValidationSummary:
    """Across-user aggregate."""

    per_user: Tuple[UserValidation, ...]

    @property
    def mean_recall(self) -> float:
        if not self.per_user:
            return 0.0
        return sum(v.recall for v in self.per_user) / len(self.per_user)

    @property
    def mean_precision(self) -> float:
        if not self.per_user:
            return 0.0
        return sum(v.precision for v in self.per_user) / len(self.per_user)

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "user_id": v.user_id,
                "truth_stops": v.n_truth_stops,
                "pattern_items": v.n_pattern_items,
                "recall": round(v.recall, 3),
                "precision": round(v.precision, 3),
            }
            for v in self.per_user
        ]


def _truth_labels(
    stop: RoutineStop, agent: AgentProfile, generation: GenerationResult,
    taxonomy: CategoryTree,
) -> Set[str]:
    """Every label (venue id / leaf / ancestors) that would count as
    detecting this routine stop."""
    labels: Set[str] = set()
    if stop.pool_kind == "fixed":
        venue = generation.city.venues_by_id.get(stop.target)
        if venue is None:
            return labels
        labels.add(venue.venue_id)
        leaf = venue.category_name
    else:
        leaf = stop.target
    labels.add(leaf)
    try:
        node = taxonomy.resolve(leaf)
        labels.update(a.name for a in taxonomy.ancestors(node.category_id))
    except UnknownCategoryError:
        pass
    return labels


def validate_against_ground_truth(
    generation: GenerationResult,
    profiles: Mapping[str, UserPatternProfile],
    taxonomy: CategoryTree,
    binning: TimeBinning,
    min_stop_prob: float = 0.55,
    bin_tolerance: int = 2,
    weekday_only: bool = True,
) -> ValidationSummary:
    """Score every profiled user against their generating routine.

    A *truth stop* is a weekday routine stop whose occurrence probability is
    at least ``min_stop_prob`` (stops the agent actually performs most
    days — low-probability stops are not recoverable at min_support 0.5 by
    construction).  A truth stop is **recalled** when some mined pattern
    item has a matching label (the stop's venue, its leaf category, or any
    ancestor) within ``bin_tolerance`` bins of the stop's hour.  A pattern
    item is **precise** when it matches some routine stop of *any*
    probability (weekday or weekend) the same way.
    """
    if not (0.0 <= min_stop_prob <= 1.0):
        raise ValueError("min_stop_prob must be a probability")
    if bin_tolerance < 0:
        raise ValueError("bin_tolerance must be non-negative")

    results: List[UserValidation] = []
    n_bins = binning.n_bins
    for user_id in sorted(profiles):
        agent = generation.agents_by_id.get(user_id)
        if agent is None:
            continue
        profile = profiles[user_id]

        def stop_bin(stop: RoutineStop) -> int:
            return binning.bin_of_hour(min(23.999, max(0.0, stop.hour)))

        truth_stops = [
            stop for stop in agent.weekday_routine if stop.prob >= min_stop_prob
        ]
        if not weekday_only:
            truth_stops += [
                stop for stop in agent.weekend_routine if stop.prob >= min_stop_prob
            ]
        all_stops = list(agent.weekday_routine) + list(agent.weekend_routine)

        pattern_items = {item for p in profile.patterns for item in p.items}

        def bins_close(a: int, b: int) -> bool:
            d = abs(a - b)
            return min(d, n_bins - d) <= bin_tolerance

        matched_truth = 0
        for stop in truth_stops:
            labels = _truth_labels(stop, agent, generation, taxonomy)
            if any(
                item.label in labels and bins_close(item.bin, stop_bin(stop))
                for item in pattern_items
            ):
                matched_truth += 1

        matched_items = 0
        for item in pattern_items:
            hit = False
            for stop in all_stops:
                labels = _truth_labels(stop, agent, generation, taxonomy)
                if item.label in labels and bins_close(item.bin, stop_bin(stop)):
                    hit = True
                    break
            matched_items += hit

        results.append(
            UserValidation(
                user_id=user_id,
                n_truth_stops=len(truth_stops),
                n_pattern_items=len(pattern_items),
                matched_truth=matched_truth,
                matched_items=matched_items,
            )
        )
    return ValidationSummary(per_user=tuple(results))
