"""Figure 5–8 drivers: the min_support sweeps of Section III.

The paper's two experiments, run over the preprocessed users:

* **Fig. 5** — average number of mined sequences per user vs ``min_support``
  (monotonically decreasing; the 0.25→0.5 drop is steeper than 0.5→0.75);
* **Fig. 6** — distribution of the per-user sequence count at 0.5;
* **Fig. 7** — average pattern length per user vs ``min_support``
  (decreasing: long patterns are certified less often than short ones);
* **Fig. 8** — distribution of the per-user average length at 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.records import CheckInDataset
from ..mining import (
    ModifiedPrefixSpanConfig,
    UserMiningStats,
    aggregate_stats,
    modified_prefixspan,
    user_mining_stats,
    MiningAggregate,
)
from ..sequences import HOURLY, SequenceDatabase, TimeBinning, TimedItem, build_all_databases
from ..taxonomy import AbstractionLevel, CategoryTree
from ..viz import Histogram, LineChart

__all__ = [
    "SupportSweepResult",
    "DEFAULT_SUPPORTS",
    "run_support_sweep",
    "fig5_chart",
    "fig6_chart",
    "fig7_chart",
    "fig8_chart",
]

#: The paper sweeps 0.25 → 0.75; intermediate points flesh out the curve.
DEFAULT_SUPPORTS: Tuple[float, ...] = (0.25, 0.375, 0.5, 0.625, 0.75)


@dataclass
class SupportSweepResult:
    """Everything Figs. 5–8 need, from one sweep over one dataset."""

    supports: Tuple[float, ...]
    #: support → user id → per-user stats
    per_user: Dict[float, Dict[str, UserMiningStats]]
    #: support → cross-user aggregate
    aggregates: Dict[float, MiningAggregate]

    def mean_sequences_series(self) -> Tuple[List[float], List[float]]:
        """(supports, mean sequences/user) — the Fig. 5 curve."""
        xs = list(self.supports)
        return xs, [self.aggregates[s].mean_sequences_per_user for s in xs]

    def mean_length_series(self) -> Tuple[List[float], List[float]]:
        """(supports, mean avg pattern length) — the Fig. 7 curve."""
        xs = list(self.supports)
        return xs, [self.aggregates[s].mean_avg_length for s in xs]

    def sequence_counts_at(self, support: float) -> List[int]:
        """Per-user sequence counts — the Fig. 6 sample."""
        return [s.n_sequences for s in self.per_user[support].values()]

    def avg_lengths_at(self, support: float) -> List[float]:
        """Per-user average lengths (pattern-holding users) — the Fig. 8 sample."""
        return [
            s.avg_length for s in self.per_user[support].values() if s.n_sequences > 0
        ]

    def to_rows(self) -> List[Dict[str, float]]:
        """One row per support level, for tables and EXPERIMENTS.md."""
        return [self.aggregates[s].as_row() for s in self.supports]


def run_support_sweep(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    supports: Sequence[float] = DEFAULT_SUPPORTS,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    base_config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    databases: Optional[Mapping[str, SequenceDatabase[TimedItem]]] = None,
) -> SupportSweepResult:
    """Mine every user at every support level.

    ``databases`` can be passed to reuse prebuilt per-user databases across
    sweeps (the ablation benches do).
    """
    if not supports:
        raise ValueError("need at least one support level")
    dbs = dict(databases) if databases is not None else build_all_databases(
        dataset, taxonomy, level, binning
    )
    per_user: Dict[float, Dict[str, UserMiningStats]] = {}
    aggregates: Dict[float, MiningAggregate] = {}
    for support in supports:
        config = ModifiedPrefixSpanConfig(
            min_support=support,
            limits=base_config.limits,
            time_tolerance_bins=base_config.time_tolerance_bins,
            max_gap_bins=base_config.max_gap_bins,
            include_ancestor_labels=base_config.include_ancestor_labels,
            canonicalize_bins=base_config.canonicalize_bins,
        )
        stats: Dict[str, UserMiningStats] = {}
        for user_id, db in dbs.items():
            patterns = modified_prefixspan(db, config, taxonomy=taxonomy,
                                           n_bins=binning.n_bins)
            stats[user_id] = user_mining_stats(user_id, patterns, n_days=len(db))
        per_user[support] = stats
        aggregates[support] = aggregate_stats(support, stats)
    return SupportSweepResult(
        supports=tuple(supports), per_user=per_user, aggregates=aggregates
    )


def fig5_chart(sweep: SupportSweepResult) -> str:
    """Fig. 5: average number of sequences per user vs min_support."""
    xs, ys = sweep.mean_sequences_series()
    chart = LineChart(
        "Fig. 5 — Avg number of sequences per user vs minimum support",
        x_label="minimum support threshold",
        y_label="avg sequences per user",
    )
    chart.add_series("modified PrefixSpan", xs, ys)
    return chart.render()


def fig6_chart(sweep: SupportSweepResult, support: float = 0.5) -> str:
    """Fig. 6: distribution of the number of sequences at one support."""
    counts = sweep.sequence_counts_at(support)
    hist = Histogram(
        f"Fig. 6 — Distribution of sequences per user (min_support = {support:g})",
        x_label="number of sequences",
        bins=min(20, max(5, len(set(counts)))),
    )
    hist.add_values(counts)
    return hist.render()


def fig7_chart(sweep: SupportSweepResult) -> str:
    """Fig. 7: average length of sequences per user vs min_support."""
    xs, ys = sweep.mean_length_series()
    chart = LineChart(
        "Fig. 7 — Avg length of sequences per user vs minimum support",
        x_label="minimum support threshold",
        y_label="avg pattern length",
    )
    chart.add_series("modified PrefixSpan", xs, ys)
    return chart.render()


def fig8_chart(sweep: SupportSweepResult, support: float = 0.5) -> str:
    """Fig. 8: distribution of the average length at one support."""
    lengths = sweep.avg_lengths_at(support)
    hist = Histogram(
        f"Fig. 8 — Distribution of avg pattern length (min_support = {support:g})",
        x_label="average pattern length",
        bins=12,
    )
    hist.add_values(lengths)
    return hist.render()
