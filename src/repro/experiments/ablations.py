"""Ablations over the design choices DESIGN.md calls out.

Each function sweeps one knob and returns comparable rows:

* abstraction level (venue / leaf / root) — the paper's core trick;
* time-bin width (1h / 2h / 4h);
* microcell size (crowd-view grid resolution);
* activity-filter threshold (qualifying days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crowd import CrowdAggregator
from ..data import ActiveUserFilter, CheckInDataset, filter_active_users
from ..geo import MicrocellGrid
from ..mining import ModifiedPrefixSpanConfig, modified_prefixspan, user_mining_stats, aggregate_stats
from ..patterns import detect_all_patterns
from ..sequences import TimeBinning, build_all_databases
from ..taxonomy import AbstractionLevel, CategoryTree

__all__ = [
    "AblationRow",
    "abstraction_ablation",
    "binning_ablation",
    "cell_size_ablation",
    "activity_filter_ablation",
    "day_kind_ablation",
    "tolerance_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One setting of one ablation, with the headline metrics."""

    knob: str
    setting: str
    mean_sequences_per_user: float
    mean_avg_length: float
    extra: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "knob": self.knob,
            "setting": self.setting,
            "mean_sequences_per_user": round(self.mean_sequences_per_user, 3),
            "mean_avg_length": round(self.mean_avg_length, 3),
        }
        row.update({k: round(v, 3) for k, v in self.extra.items()})
        return row


def _mine_and_aggregate(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    level: AbstractionLevel,
    binning: TimeBinning,
    config: ModifiedPrefixSpanConfig,
    day_kind: str = "all",
) -> Tuple[float, float]:
    """(mean sequences/user, mean avg length) for one setting."""
    dbs = build_all_databases(dataset, taxonomy, level, binning, day_kind=day_kind)
    stats = {}
    for user_id, db in dbs.items():
        patterns = modified_prefixspan(db, config, taxonomy=taxonomy, n_bins=binning.n_bins)
        stats[user_id] = user_mining_stats(user_id, patterns, len(db))
    agg = aggregate_stats(config.min_support, stats)
    return agg.mean_sequences_per_user, agg.mean_avg_length


def abstraction_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    binning: TimeBinning,
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    levels: Sequence[AbstractionLevel] = (
        AbstractionLevel.VENUE, AbstractionLevel.LEAF, AbstractionLevel.ROOT,
    ),
) -> List[AblationRow]:
    """Pattern yield per abstraction level.

    The paper's motivating claim: raw venues hide routines that category
    abstraction reveals, so pattern counts should rise venue → leaf → root.
    """
    rows = []
    for level in levels:
        mean_seq, mean_len = _mine_and_aggregate(dataset, taxonomy, level, binning, config)
        rows.append(AblationRow(
            knob="abstraction",
            setting=level.value,
            mean_sequences_per_user=mean_seq,
            mean_avg_length=mean_len,
            extra={},
        ))
    return rows


def binning_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    widths_hours: Sequence[float] = (1.0, 2.0, 4.0),
    level: AbstractionLevel = AbstractionLevel.ROOT,
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
) -> List[AblationRow]:
    """Pattern yield per time-bin width (wider bins absorb time jitter)."""
    rows = []
    for width in widths_hours:
        binning = TimeBinning(width)
        mean_seq, mean_len = _mine_and_aggregate(dataset, taxonomy, level, binning, config)
        rows.append(AblationRow(
            knob="bin_width_hours",
            setting=f"{width:g}h",
            mean_sequences_per_user=mean_seq,
            mean_avg_length=mean_len,
            extra={},
        ))
    return rows


def cell_size_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    binning: TimeBinning,
    cell_sizes_m: Sequence[float] = (250.0, 500.0, 1000.0, 2000.0),
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
) -> List[AblationRow]:
    """Crowd-view grid resolution: occupied cells and biggest group at 9–10 am."""
    profiles = detect_all_patterns(dataset, taxonomy, binning=binning, config=config)
    rows = []
    for size in cell_sizes_m:
        grid = MicrocellGrid(dataset.bounding_box().expand(0.002), size)
        aggregator = CrowdAggregator(profiles, dataset, grid, taxonomy, binning=binning)
        snap = aggregator.timeline().at_hour(9.5)
        groups = snap.groups(min_size=2)
        rows.append(AblationRow(
            knob="cell_size_m",
            setting=f"{size:g}m",
            mean_sequences_per_user=0.0,
            mean_avg_length=0.0,
            extra={
                "users_placed": float(snap.n_users),
                "occupied_cells": float(len(snap.cell_counts())),
                "largest_group": float(groups[0].size) if groups else 0.0,
                "n_groups": float(len(groups)),
            },
        ))
    return rows


def activity_filter_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    binning: TimeBinning,
    thresholds: Sequence[int] = (20, 35, 50, 65),
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
) -> List[AblationRow]:
    """Sensitivity of the pipeline to the >N-qualifying-days user filter.

    ``dataset`` should be the densest-window (unfiltered) data.
    """
    rows = []
    for threshold in thresholds:
        filtered = filter_active_users(
            dataset, ActiveUserFilter(min_qualifying_days=threshold)
        )
        if filtered.n_users == 0:
            rows.append(AblationRow(
                knob="min_qualifying_days", setting=str(threshold),
                mean_sequences_per_user=0.0, mean_avg_length=0.0,
                extra={"users_kept": 0.0},
            ))
            continue
        mean_seq, mean_len = _mine_and_aggregate(
            filtered, taxonomy, AbstractionLevel.ROOT, binning, config
        )
        rows.append(AblationRow(
            knob="min_qualifying_days",
            setting=str(threshold),
            mean_sequences_per_user=mean_seq,
            mean_avg_length=mean_len,
            extra={"users_kept": float(filtered.n_users)},
        ))
    return rows


def day_kind_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    binning: TimeBinning,
    config: ModifiedPrefixSpanConfig = ModifiedPrefixSpanConfig(),
    level: AbstractionLevel = AbstractionLevel.ROOT,
) -> List[AblationRow]:
    """Weekday vs weekend vs all-days mining.

    Conditioning on the day type sharpens both routines: a worker's
    weekday pattern is stronger among weekdays only than diluted across
    the whole week.
    """
    rows = []
    for day_kind in ("all", "weekday", "weekend"):
        mean_seq, mean_len = _mine_and_aggregate(
            dataset, taxonomy, level, binning, config, day_kind=day_kind
        )
        rows.append(AblationRow(
            knob="day_kind",
            setting=day_kind,
            mean_sequences_per_user=mean_seq,
            mean_avg_length=mean_len,
            extra={},
        ))
    return rows


def tolerance_ablation(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    binning: TimeBinning,
    tolerances: Sequence[int] = (0, 1, 2),
    min_support: float = 0.5,
    level: AbstractionLevel = AbstractionLevel.ROOT,
) -> List[AblationRow]:
    """Time-tolerance sweep of the modified PrefixSpan.

    Tolerance 0 is classic PrefixSpan; widening the match window absorbs
    visit-time jitter, so pattern counts must be non-decreasing in the
    tolerance (a wider matcher can only add support).
    """
    rows = []
    for tolerance in tolerances:
        config = ModifiedPrefixSpanConfig(
            min_support=min_support, time_tolerance_bins=tolerance
        )
        mean_seq, mean_len = _mine_and_aggregate(
            dataset, taxonomy, level, binning, config
        )
        rows.append(AblationRow(
            knob="time_tolerance_bins",
            setting=str(tolerance),
            mean_sequences_per_user=mean_seq,
            mean_avg_length=mean_len,
            extra={},
        ))
    return rows
