"""One-shot experiment runner: regenerate every table and figure.

``run_all`` executes the full reproduction — dataset statistics (the §I.1
table), the pipeline (Fig. 2), the crowd views (Figs. 3–4), the support
sweeps (Figs. 5–8), the prediction comparison, and the ablations — and
writes SVGs, a JSON results file, and a self-contained HTML report.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..data import (
    ActiveUserFilter,
    CheckInDataset,
    SMALL_CONFIG,
    SynthConfig,
    dataset_stats,
    synthetic_dataset,
)
from ..mining import ModifiedPrefixSpanConfig
from ..pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..prediction import (
    FrequencyPredictor,
    MarkovPredictor,
    PatternBasedPredictor,
    RNNPredictor,
    compare_predictors,
)
from ..sequences import HOURLY, make_labeler, sessionize_user
from ..taxonomy import AbstractionLevel, build_default_taxonomy
from ..viz import HtmlReport
from .crowd_views import CrowdViewResult, crowd_views
from .figures import (
    DEFAULT_SUPPORTS,
    SupportSweepResult,
    fig5_chart,
    fig6_chart,
    fig7_chart,
    fig8_chart,
    run_support_sweep,
)

__all__ = ["ExperimentOutputs", "run_all", "small_pipeline_config"]


def small_pipeline_config() -> PipelineConfig:
    """Pipeline knobs scaled for the small test dataset (2-month window)."""
    return PipelineConfig(
        window_months=2,
        activity=ActiveUserFilter(min_qualifying_days=25),
    )


@dataclass
class ExperimentOutputs:
    """Everything :func:`run_all` produced, in memory and on disk."""

    output_dir: Path
    dataset: CheckInDataset
    pipeline: PipelineResult
    sweep: SupportSweepResult
    views: CrowdViewResult
    prediction: Dict[str, object]
    stats_rows: List
    elapsed_s: float
    files: Dict[str, Path] = field(default_factory=dict)


def _prediction_comparison(
    result: PipelineResult, rnn_epochs: int = 8
) -> Dict[str, object]:
    """Micro-averaged next-place accuracy of all baselines on the filtered
    users, at leaf abstraction (closer to the paper's 8–25% regime than the
    few-class root level)."""
    labeler = make_labeler(result.taxonomy, AbstractionLevel.LEAF)
    sequences_by_user = {}
    for user_id in result.profiles:
        sessions = sessionize_user(result.dataset, user_id, labeler, result.config.binning)
        sequences = [[item.label for item in s.items] for s in sessions if len(s.items) >= 2]
        if len(sequences) >= 8:
            sequences_by_user[user_id] = sequences
    if not sequences_by_user:
        return {"note": "no users with enough multi-visit days", "reports": {}}

    # The pattern-based predictor needs patterns in the *same* token space
    # as the sequences, so mine leaf-level label patterns per user here
    # (the pipeline's profiles are root-level).
    from ..mining import ModifiedPrefixSpanConfig, modified_prefixspan
    from ..sequences import build_user_database

    label_patterns = {}
    leaf_config = ModifiedPrefixSpanConfig(min_support=0.3)
    for uid in sequences_by_user:
        db = build_user_database(result.dataset, uid, result.taxonomy,
                                 AbstractionLevel.LEAF, result.config.binning)
        mined = modified_prefixspan(db, leaf_config, taxonomy=result.taxonomy,
                                    n_bins=result.config.binning.n_bins)
        label_patterns[uid] = [
            type(p)(items=tuple(i.label for i in p.items), count=p.count,
                    support=p.support)
            for p in mined
        ]

    def pattern_factory_for(uid: str):
        return lambda: PatternBasedPredictor(label_patterns[uid])

    reports = compare_predictors(
        {
            "frequency": FrequencyPredictor,
            "markov-1": lambda: MarkovPredictor(1),
            "markov-2": lambda: MarkovPredictor(2),
            "rnn": lambda: RNNPredictor(epochs=rnn_epochs, seed=11),
        },
        sequences_by_user,
    )
    # Pattern-based needs per-user patterns, so evaluate it user by user.
    total = hit1 = hit3 = 0
    from ..prediction import prediction_examples, split_sequences

    for uid, sequences in sequences_by_user.items():
        train, test = split_sequences(sequences)
        predictor = pattern_factory_for(uid)()
        predictor.fit(train)
        for prefix, actual in prediction_examples(test):
            top3 = predictor.predict(prefix, k=3)
            total += 1
            hit1 += bool(top3 and top3[0] == actual)
            hit3 += actual in top3
    from ..prediction import PredictionReport

    reports["pattern-based"] = PredictionReport(
        predictor="pattern-based",
        n_examples=total,
        accuracy_at_1=hit1 / total if total else 0.0,
        accuracy_at_3=hit3 / total if total else 0.0,
    )
    return {
        "n_users": len(sequences_by_user),
        "reports": {name: rep.as_row() for name, rep in reports.items()},
    }


def run_all(
    output_dir: Union[str, Path],
    dataset: Optional[CheckInDataset] = None,
    pipeline_config: Optional[PipelineConfig] = None,
    supports: Sequence[float] = DEFAULT_SUPPORTS,
    scale: str = "small",
    seed: Optional[int] = None,
    include_prediction: bool = True,
) -> ExperimentOutputs:
    """Regenerate every experiment into ``output_dir``.

    ``scale="small"`` (default) uses the fast test dataset; ``scale="paper"``
    generates the full 1,083-user / 11-month dataset (≈20 s generation).
    """
    t0 = time.time()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    taxonomy = build_default_taxonomy()

    if dataset is None:
        if scale == "paper":
            config = SynthConfig() if seed is None else SynthConfig(seed=seed)
        elif scale == "small":
            config = SMALL_CONFIG if seed is None else SynthConfig(
                **{**SMALL_CONFIG.__dict__, "seed": seed}
            )
        else:
            raise ValueError(f"unknown scale {scale!r} (expected 'small' or 'paper')")
        dataset = synthetic_dataset(config)
    if pipeline_config is None:
        pipeline_config = PipelineConfig() if scale == "paper" else small_pipeline_config()

    # Table-D: dataset statistics (§I.1).
    stats = dataset_stats(dataset)
    stats_rows = stats.as_rows()

    # Fig. 2: the pipeline itself.
    result = run_pipeline(dataset, pipeline_config, taxonomy)

    # Figs. 5–8: support sweeps on the preprocessed users.
    sweep = run_support_sweep(
        result.dataset, taxonomy, supports,
        level=pipeline_config.level, binning=pipeline_config.binning,
        base_config=pipeline_config.mining,
    )

    # Figs. 3–4: crowd views at two windows.
    views = crowd_views(result.timeline, hours=(9.5, 13.5))

    prediction = (
        _prediction_comparison(result) if include_prediction else {"reports": {}}
    )

    # Occupancy heatmap: the busiest microcells across the whole day.
    occupancy = result.aggregator.cell_occupancy_matrix()
    top_cells = sorted(occupancy, key=lambda c: -sum(occupancy[c]))[:25]
    heatmap_svg = None
    if top_cells:
        from ..viz import Heatmap

        heatmap_svg = Heatmap(
            "Crowd occupancy by microcell and hour",
            row_labels=[result.grid.cell(c).cell_id for c in top_cells],
            col_labels=[f"{h:02d}" for h in range(24)],
            values=[occupancy[c] for c in top_cells],
            x_label="hour of day",
        ).render()

    # The automated crowd-movement animation (paper future work), as SMIL SVG.
    from ..crowd import build_animation
    from ..viz import label_color_order, render_animated_crowd

    frames = build_animation(result.timeline, steps_per_transition=3)
    animation_svg = (
        render_animated_crowd(
            frames, result.grid,
            label_order=label_color_order(list(result.timeline)),
        )
        if frames and any(f.dots for f in frames)
        else None
    )

    files: Dict[str, Path] = {}
    figures = {
        "fig3_crowd_0900.svg": views.svgs[0],
        "fig4_crowd_1300.svg": views.svgs[1] if len(views.svgs) > 1 else views.svgs[0],
        "fig5_sequences_vs_support.svg": fig5_chart(sweep),
        "fig6_sequence_count_distribution.svg": fig6_chart(sweep),
        "fig7_length_vs_support.svg": fig7_chart(sweep),
        "fig8_length_distribution.svg": fig8_chart(sweep),
    }
    if heatmap_svg is not None:
        figures["occupancy_heatmap.svg"] = heatmap_svg
    if animation_svg is not None:
        figures["crowd_animation.svg"] = animation_svg
    for name, svg in figures.items():
        path = output_dir / name
        path.write_text(svg, encoding="utf-8")
        files[name] = path

    results_json = {
        "dataset_stats": [list(r) for r in stats_rows],
        "preprocess": [list(r) for r in result.report.as_rows()] if result.report else [],
        "sweep_rows": sweep.to_rows(),
        "fig6_counts": sweep.sequence_counts_at(0.5),
        "fig8_lengths": sweep.avg_lengths_at(0.5),
        "crowd_views": views.summary_rows(),
        "crowd_shift": list(views.shift_scores),
        "prediction": prediction,
    }
    json_path = output_dir / "results.json"
    json_path.write_text(json.dumps(results_json, indent=1), encoding="utf-8")
    files["results.json"] = json_path

    report = HtmlReport(
        "CrowdWeb reproduction — experiment report",
        subtitle=f"dataset: {dataset.name} ({len(dataset):,} check-ins, {dataset.n_users} users)",
    )
    report.add_heading("Dataset statistics (paper §I.1)")
    report.add_table(["metric", "value"], stats_rows)
    if result.report:
        report.add_heading("Pre-processing")
        report.add_table(["step", "value"], result.report.as_rows())
    report.add_heading("Crowd views (Figs. 3–4)")
    for svg, snap in zip(views.svgs, views.snapshots):
        report.add_svg(svg, caption=f"{snap.n_users} users placed in window {snap.window.label}")
    if views.shift_scores:
        report.add_paragraph(
            f"Crowd relocation between views (Jaccard distance of occupied cells): "
            f"{', '.join(f'{s:.2f}' for s in views.shift_scores)}"
        )
    report.add_heading("Support sweeps (Figs. 5–8)")
    report.add_table(
        ["min_support", "mean sequences/user", "mean avg length"],
        [
            [f"{row['min_support']:g}", f"{row['mean_sequences_per_user']:.2f}",
             f"{row['mean_avg_length']:.2f}"]
            for row in sweep.to_rows()
        ],
    )
    for name in ("fig5_sequences_vs_support.svg", "fig6_sequence_count_distribution.svg",
                 "fig7_length_vs_support.svg", "fig8_length_distribution.svg"):
        report.add_svg(figures[name])
    if heatmap_svg is not None:
        report.add_heading("Crowd occupancy heatmap")
        report.add_svg(heatmap_svg,
                       caption="Users placed per microcell per hourly window "
                               "(top 25 cells).")
    if animation_svg is not None:
        report.add_heading("Crowd movement animation (future-work feature)")
        report.add_svg(animation_svg,
                       caption="Self-contained SMIL animation; dots glide "
                               "between pattern-grounded locations.")
    if prediction.get("reports"):
        report.add_heading("Next-place prediction baselines (leaf level)")
        rows = [
            [name, row["n_examples"], f"{row['acc@1']:.1%}", f"{row['acc@3']:.1%}"]
            for name, row in prediction["reports"].items()
        ]
        report.add_table(["predictor", "examples", "acc@1", "acc@3"], rows)
    html_path = report.save(output_dir / "report.html")
    files["report.html"] = html_path

    return ExperimentOutputs(
        output_dir=output_dir,
        dataset=dataset,
        pipeline=result,
        sweep=sweep,
        views=views,
        prediction=prediction,
        stats_rows=stats_rows,
        elapsed_s=time.time() - t0,
        files=files,
    )
