"""Render the benchmark suite's measured.json into a markdown summary.

``pytest benchmarks/ --benchmark-disable`` records every regenerated
table/figure into ``benchmarks/out/measured.json``; this module turns that
artifact into the measured-results section used to refresh EXPERIMENTS.md
(``python -m repro.experiments.report_markdown``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["main", "render_measured_markdown"]


def _table(headers: List[str], rows: List[List[object]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return lines


def render_measured_markdown(measured: Dict) -> str:
    """Markdown for whatever measurement families are present."""
    out: List[str] = ["# Measured results", ""]

    if "table_dataset_stats" in measured:
        out += ["## Dataset statistics", ""]
        out += _table(["metric", "value"], measured["table_dataset_stats"])
        out.append("")

    if "fig5_sequences_vs_support" in measured:
        payload = measured["fig5_sequences_vs_support"]
        out += ["## Fig. 5 — sequences/user vs min_support", ""]
        out += _table(
            ["min_support"] + [f"{s:g}" for s in payload["supports"]],
            [["mean seq/user"] + [f"{y:.2f}" for y in payload["mean_sequences_per_user"]]],
        )
        out.append("")

    if "fig7_length_vs_support" in measured:
        payload = measured["fig7_length_vs_support"]
        out += ["## Fig. 7 — avg pattern length vs min_support", ""]
        out += _table(
            ["min_support"] + [f"{s:g}" for s in payload["supports"]],
            [["mean avg length"] + [f"{y:.2f}" for y in payload["mean_avg_length"]]],
        )
        out.append("")

    if "fig3_fig4_crowd_views" in measured:
        payload = measured["fig3_fig4_crowd_views"]
        out += ["## Figs. 3–4 — crowd views", ""]
        out += _table(["window", "users", "occupied cells"], payload["windows"])
        shifts = ", ".join(f"{s:.2f}" for s in payload["shift"])
        out += ["", f"Crowd shift between views (Jaccard distance): {shifts}", ""]

    if "table_pattern_recovery" in measured:
        rows = measured["table_pattern_recovery"]
        out += ["## Ground-truth pattern recovery", ""]
        out += _table(
            ["min_support", "recall", "precision"],
            [[f"{r['min_support']:g}", f"{r['mean_recall']:.1%}",
              f"{r['mean_precision']:.1%}"] for r in rows],
        )
        out.append("")

    if "table_prediction_accuracy" in measured:
        out += ["## Next-place prediction accuracy", ""]
        for level, reports in measured["table_prediction_accuracy"].items():
            out.append(f"### {level} level")
            out += _table(
                ["predictor", "acc@1", "acc@3", "examples"],
                [[name, f"{row['acc@1']:.1%}", f"{row['acc@3']:.1%}",
                  row["n_examples"]] for name, row in reports.items()],
            )
            out.append("")

    if "table_crowd_forecast" in measured:
        payload = measured["table_crowd_forecast"]
        out += ["## Out-of-sample crowd forecast", ""]
        out += _table(["metric", "value"], [
            ["time lift", f"{payload['time_lift']:g}x"],
            ["Spearman (forecast)", payload["correlation"]],
            ["Spearman (time-blind baseline)", payload["baseline_correlation"]],
            ["MAE forecast / baseline",
             f"{payload['mae_forecast']} / {payload['mae_baseline']}"],
        ])
        out.append("")

    for key in sorted(measured):
        if key.startswith("ablation_"):
            rows = measured[key]
            out += [f"## {key.replace('_', ' ').title()}", ""]
            headers = sorted({column for row in rows for column in row})
            out += _table(headers, [[row.get(h, "") for h in headers] for row in rows])
            out.append("")

    return "\n".join(out)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measured", type=Path,
                        default=Path("benchmarks/out/measured.json"))
    parser.add_argument("--out", type=Path, default=None,
                        help="write to a file instead of stdout")
    args = parser.parse_args(argv)
    measured = json.loads(Path(args.measured).read_text(encoding="utf-8"))
    text = render_measured_markdown(measured)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
