"""Experiment drivers: one module per paper table/figure family."""

from .ablations import (
    AblationRow,
    abstraction_ablation,
    activity_filter_ablation,
    binning_ablation,
    cell_size_ablation,
    day_kind_ablation,
    tolerance_ablation,
)
from .crowd_views import CrowdViewResult, crowd_shift, crowd_views
from .ground_truth import (
    UserValidation,
    ValidationSummary,
    validate_against_ground_truth,
)
from .figures import (
    DEFAULT_SUPPORTS,
    SupportSweepResult,
    fig5_chart,
    fig6_chart,
    fig7_chart,
    fig8_chart,
    run_support_sweep,
)
from .runner import ExperimentOutputs, run_all, small_pipeline_config

__all__ = [
    "AblationRow",
    "CrowdViewResult",
    "DEFAULT_SUPPORTS",
    "ExperimentOutputs",
    "SupportSweepResult",
    "UserValidation",
    "ValidationSummary",
    "abstraction_ablation",
    "activity_filter_ablation",
    "binning_ablation",
    "cell_size_ablation",
    "crowd_shift",
    "crowd_views",
    "day_kind_ablation",
    "fig5_chart",
    "fig6_chart",
    "fig7_chart",
    "fig8_chart",
    "run_all",
    "run_support_sweep",
    "small_pipeline_config",
    "tolerance_ablation",
    "validate_against_ground_truth",
]
