"""Figure 3–4 drivers: city-scale crowd views at chosen time windows.

Reproduces the paper's demo screenshots — the crowd at 9–10 am and at a
second window — and quantifies the claim that "if we change the time, the
crowd locations may change to other microcells".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..crowd import CrowdSnapshot, CrowdTimeline, window_flows
from ..viz import label_color_order, render_snapshot

__all__ = ["CrowdViewResult", "crowd_views", "crowd_shift"]


@dataclass(frozen=True)
class CrowdViewResult:
    """Snapshots rendered at the requested hours, plus movement evidence."""

    hours: Tuple[float, ...]
    snapshots: Tuple[CrowdSnapshot, ...]
    svgs: Tuple[str, ...]
    #: Jaccard distance between occupied-cell sets of consecutive views —
    #: > 0 demonstrates the crowd *moves* between windows.
    shift_scores: Tuple[float, ...]

    def summary_rows(self) -> List[Tuple[str, int, int]]:
        """(window, users placed, occupied cells) per view."""
        return [
            (snap.window.label, snap.n_users, len(snap.cell_counts()))
            for snap in self.snapshots
        ]


def crowd_shift(a: CrowdSnapshot, b: CrowdSnapshot) -> float:
    """Jaccard *distance* of occupied microcell sets (0 = identical crowd
    layout, 1 = completely relocated)."""
    cells_a = set(a.cell_counts())
    cells_b = set(b.cell_counts())
    if not cells_a and not cells_b:
        return 0.0
    union = cells_a | cells_b
    return 1.0 - len(cells_a & cells_b) / len(union)


def crowd_views(
    timeline: CrowdTimeline, hours: Sequence[float] = (9.5, 13.5)
) -> CrowdViewResult:
    """Render the crowd at each requested local hour (paper: 9–10 am view,
    then a later window showing the crowd relocated)."""
    if not hours:
        raise ValueError("need at least one hour")
    order = label_color_order(list(timeline))
    snapshots = tuple(timeline.at_hour(h) for h in hours)
    svgs = tuple(
        render_snapshot(snap, label_order=order,
                        title=f"Crowd in the smart city, {snap.window.label}")
        for snap in snapshots
    )
    shifts = tuple(
        crowd_shift(a, b) for a, b in zip(snapshots, snapshots[1:])
    )
    return CrowdViewResult(hours=tuple(hours), snapshots=snapshots, svgs=svgs,
                           shift_scores=shifts)
