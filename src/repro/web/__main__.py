"""``python -m repro.web`` — run the platform on a synthetic dataset."""

from __future__ import annotations

import argparse

from dataclasses import replace

from ..data import small_dataset, synthetic_dataset
from ..exec import ExecConfig
from ..experiments import small_pipeline_config
from ..obs import enable as obs_enable
from ..pipeline import PipelineConfig, run_pipeline
from .server import CrowdWebServer


def prepare_from_profiles(dataset, config: PipelineConfig, profiles_path):
    """Build a :class:`PipelineResult` from persisted profiles — skips the
    expensive mining phase entirely."""
    from ..crowd import CrowdAggregator
    from ..data import preprocess
    from ..geo import MicrocellGrid
    from ..persistence import load_profiles
    from ..pipeline import PipelineResult
    from ..taxonomy import build_default_taxonomy

    taxonomy = build_default_taxonomy()
    profiles = load_profiles(profiles_path)
    filtered, report = preprocess(dataset, config.window_months, config.activity)
    grid = MicrocellGrid(filtered.bounding_box().expand(0.002), config.cell_size_m)
    aggregator = CrowdAggregator(profiles, filtered, grid, taxonomy,
                                 binning=config.binning)
    return PipelineResult(
        dataset=filtered, report=report, profiles=profiles, grid=grid,
        aggregator=aggregator, timeline=aggregator.timeline(),
        taxonomy=taxonomy, config=config,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Serve the CrowdWeb platform")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8460)
    parser.add_argument("--scale", choices=["small", "paper"], default="small",
                        help="synthetic dataset size (paper scale takes ~30 s to prepare)")
    parser.add_argument("--profiles", default=None,
                        help="load mined profiles from a save_profiles() JSON "
                             "instead of re-mining (phases 1-2 are skipped)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for mining/aggregation "
                             "(1 = serial, 0 = all cores)")
    parser.add_argument("--trace", action="store_true",
                        help="enable observability: traces pipeline prep and "
                             "every request, served back at GET /metrics")
    args = parser.parse_args(argv)

    if args.trace:
        obs_enable()
    if args.scale == "paper":
        dataset = synthetic_dataset()
        config = PipelineConfig()
    else:
        dataset = small_dataset()
        config = small_pipeline_config()
    config = replace(config, exec=ExecConfig.from_workers(args.workers))

    def build_result():
        if args.profiles:
            result = prepare_from_profiles(dataset, config, args.profiles)
            print(f"loaded {result.n_users} profiles from {args.profiles}")
            return result
        return run_pipeline(dataset, config)

    # Bind the socket first: early requests get 503 + Retry-After while the
    # pipeline precompute runs, and the hot key space is warmed right after.
    server = CrowdWebServer(host=args.host, port=args.port,
                            result_factory=build_result, warm=True)
    print(f"CrowdWeb serving at {server.url} (preparing {dataset!r} ...)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
