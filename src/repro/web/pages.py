"""HTML page rendering for the web platform (all server-side, no JS build).

Each page is a self-contained HTML document with inline SVG.  Interactivity
is plain links (the time slider is a row of window links) plus a few lines
of vanilla JS for the animation player — deliberately simple so the whole
platform runs from the standard library.
"""

from __future__ import annotations

import json
from typing import Optional
from xml.sax.saxutils import escape

from ..patterns import build_place_graph, summarize_profile
from ..pipeline import PipelineResult
from ..sequences import make_labeler
from ..viz import render_place_graph
from ..viz.palette import SURFACE, TEXT_PRIMARY, TEXT_SECONDARY
from .tiles import TileIndex

__all__ = ["Pages"]

_NAV = (
    '<p><a href="/">Home</a> · <a href="/users">Users</a> · '
    '<a href="/city">City view</a> · <a href="/occupancy">Occupancy</a> · '
    '<a href="/communities">Communities</a> · <a href="/analytics">Analytics</a> · '
    '<a href="/animation">Animation</a></p>'
)


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\"/>"
        f"<title>{escape(title)}</title><style>"
        f"body{{font-family:system-ui,sans-serif;background:{SURFACE};"
        f"color:{TEXT_PRIMARY};max-width:900px;margin:2rem auto;padding:0 1rem}}"
        f"a{{color:#2a78d6}} p.muted{{color:{TEXT_SECONDARY};font-size:0.9rem}}"
        "table{border-collapse:collapse}th,td{padding:0.25rem 0.8rem;"
        "text-align:left;border-bottom:1px solid #e7e6e2;font-size:0.9rem}"
        ".slider a{display:inline-block;margin:2px;padding:2px 6px;"
        "border:1px solid #d6d5d0;border-radius:4px;text-decoration:none}"
        ".slider a.active{background:#2a78d6;color:#fff;border-color:#2a78d6}"
        f"</style></head><body>{_NAV}{body}</body></html>"
    )


class Pages:
    """Server-side page renderer over a pipeline result."""

    def __init__(self, result: PipelineResult) -> None:
        self.result = result

    # ---------------------------------------------------------------- home

    def home(self) -> str:
        r = self.result
        rows = "".join(
            f"<tr><td>{escape(k)}</td><td>{escape(v)}</td></tr>"
            for k, v in (r.report.as_rows() if r.report else [])
        )
        occupancy = "".join(
            f"<tr><td>{escape(label)}</td><td>{n}</td></tr>"
            for label, n in r.timeline.occupancy_series()
            if n > 0
        )
        body = (
            "<h1>CrowdWeb — crowd mobility patterns</h1>"
            f"<p class=\"muted\">dataset {escape(r.dataset.name)} · "
            f"{len(r.dataset):,} check-ins · {r.n_users} users with profiles</p>"
            "<h2>Pre-processing</h2>"
            f"<table><tr><th>step</th><th>value</th></tr>{rows}</table>"
            "<h2>Crowd size by window</h2>"
            f"<table><tr><th>window</th><th>users placed</th></tr>{occupancy}</table>"
        )
        return _page("CrowdWeb", body)

    # --------------------------------------------------------------- users

    def users(self) -> str:
        rows = []
        for user_id in sorted(self.result.profiles):
            profile = self.result.profiles[user_id]
            rows.append(
                f'<tr><td><a href="/user/{escape(user_id)}">{escape(user_id)}</a></td>'
                f"<td>{profile.n_patterns}</td><td>{profile.n_days}</td>"
                f"<td>{escape(', '.join(profile.labels()[:4]))}</td></tr>"
            )
        body = (
            "<h1>Users</h1>"
            "<table><tr><th>user</th><th>patterns</th><th>days</th>"
            f"<th>places</th></tr>{''.join(rows)}</table>"
        )
        return _page("CrowdWeb — users", body)

    def user(self, user_id: str) -> Optional[str]:
        profile = self.result.profiles.get(user_id)
        if profile is None:
            return None
        labeler = make_labeler(self.result.taxonomy, profile.level)
        graph = build_place_graph(self.result.dataset, user_id, labeler, profile.binning)
        svg = render_place_graph(graph, title=f"Places visited by {user_id}")
        summary = summarize_profile(profile, k=12)
        body = (
            f"<h1>User {escape(user_id)}</h1>"
            f"<pre>{escape(summary)}</pre>"
            f"<figure>{svg}</figure>"
        )
        return _page(f"CrowdWeb — {user_id}", body)

    # ---------------------------------------------------------------- city

    def city(self, window_index: int = 9, zoom: int = 2) -> str:
        """The tiled city view: the page ships no cell data of its own.

        The client fetches ``/api/tiles/<z>/<x>/<y>?window=<i>`` for the
        ``2^z × 2^z`` tiles of the chosen zoom and draws the aggregated
        cells — each tile response is independently cacheable (ETag/gzip),
        so scrubbing the time slider re-downloads nothing that was already
        seen.  The old monolithic-SVG path lives on in ``repro.viz`` for
        reports; this page is the serving-layer replacement.
        """
        timeline = self.result.timeline
        window_index = max(0, min(window_index, len(timeline) - 1))
        max_zoom = TileIndex(self.result.grid, timeline).max_zoom
        zoom = max(0, min(zoom, max_zoom))
        snap = timeline[window_index]
        slider_parts = []
        for i, s in enumerate(timeline):
            active = ' class="active"' if i == window_index else ""
            start = escape(s.window.label.split("-")[0])
            slider_parts.append(
                f'<a href="/city?window={i}&amp;zoom={zoom}"{active}>{start}</a>'
            )
        slider = "".join(slider_parts)
        zoom_parts = []
        for z in range(max_zoom + 1):
            active = ' class="active"' if z == zoom else ""
            zoom_parts.append(
                f'<a href="/city?window={window_index}&amp;zoom={z}"{active}>z{z}</a>'
            )
        zoom_bar = "".join(zoom_parts)
        groups = snap.groups(min_size=2)
        group_rows = "".join(
            f"<tr><td>{escape(g.label)}</td><td>{g.size}</td>"
            f"<td>{escape(', '.join(g.user_ids[:8]))}</td></tr>"
            for g in groups[:12]
        )
        config = {"window": window_index, "zoom": zoom}
        body = (
            "<h1>City view</h1>"
            f'<div class="slider">{slider}</div>'
            f'<div class="slider">{zoom_bar}</div>'
            '<svg id="citymap" width="760" height="560" '
            'style="background:#f2f1ed;border-radius:6px"></svg>'
            '<p id="tilestatus" class="muted"></p>'
            f"<script>const CFG = {json.dumps(config)};\n"
            "const svg = document.getElementById('citymap');\n"
            "const status = document.getElementById('tilestatus');\n"
            "const n = 1 << CFG.zoom;\n"
            "const tiles = [];\n"
            "for (let x = 0; x < n; x++) for (let y = 0; y < n; y++)\n"
            "  tiles.push(fetch(`/api/tiles/${CFG.zoom}/${x}/${y}?window=${CFG.window}`)\n"
            "    .then(r => r.json()));\n"
            "Promise.all([fetch('/api/tiles').then(r => r.json()), ...tiles])\n"
            ".then(([scheme, ...fetched]) => {\n"
            "  const [minLat, minLon, maxLat, maxLon] = scheme.bbox;\n"
            "  const px = lon => 10 + (lon - minLon) / (maxLon - minLon) * 740;\n"
            "  const py = lat => 10 + (1 - (lat - minLat) / (maxLat - minLat)) * 540;\n"
            "  let users = 0, shapes = [];\n"
            "  for (const tile of fetched) {\n"
            "    users += tile.n_users;\n"
            "    for (const c of tile.cells) {\n"
            "      const [blat, blon, tlat, tlon] = c.bbox;\n"
            "      const w = Math.max(2, px(tlon) - px(blon));\n"
            "      const h = Math.max(2, py(blat) - py(tlat));\n"
            "      const alpha = Math.min(0.85, 0.25 + c.count * 0.12);\n"
            "      shapes.push(`<rect x='${px(blon)}' y='${py(tlat)}' "
            "width='${w}' height='${h}' fill='#2a78d6' fill-opacity='${alpha}' "
            "stroke='#fcfcfb'><title>${c.top_label}: ${c.count} users "
            "(cell ${c.row},${c.col})</title></rect>`);\n"
            "    }\n"
            "  }\n"
            "  svg.innerHTML = shapes.join('');\n"
            "  status.textContent = `${users} users across ${fetched.length} "
            "tiles at zoom ${CFG.zoom}`;\n"
            "});\n"
            "</script>"
            f"<h2>Groups in window {escape(snap.window.label)}</h2>"
            "<table><tr><th>place</th><th>users</th><th>members</th></tr>"
            f"{group_rows}</table>"
        )
        return _page("CrowdWeb — city", body)

    # ----------------------------------------------------------- occupancy

    def occupancy(self) -> str:
        """Per-microcell occupancy heatmap across the whole day."""
        from ..viz import Heatmap

        matrix = self.result.aggregator.cell_occupancy_matrix()
        top_cells = sorted(matrix, key=lambda c: -sum(matrix[c]))[:25]
        if not top_cells:
            body = "<h1>Occupancy</h1><p class=\"muted\">no crowd placed</p>"
            return _page("CrowdWeb — occupancy", body)
        svg = Heatmap(
            "Crowd occupancy by microcell and hour",
            row_labels=[self.result.grid.cell(c).cell_id for c in top_cells],
            col_labels=[f"{h:02d}" for h in range(24)],
            values=[matrix[c] for c in top_cells],
            x_label="hour of day",
        ).render()
        body = f"<h1>Occupancy</h1><figure>{svg}</figure>"
        return _page("CrowdWeb — occupancy", body)

    # --------------------------------------------------------- communities

    def communities(self) -> str:
        """Behavioural communities over the profiled users."""
        from collections import Counter

        from ..crowd import detect_communities

        communities = detect_communities(self.result.profiles, min_similarity=0.05)
        rows = []
        for community in communities:
            labels = Counter()
            for uid in community.user_ids:
                labels.update(self.result.profiles[uid].labels())
            themes = ", ".join(label for label, _ in labels.most_common(3)) or "-"
            members = " ".join(
                f'<a href="/user/{escape(uid)}">{escape(uid)}</a>'
                for uid in community.user_ids
            )
            rows.append(
                f"<tr><td>#{community.community_id}</td><td>{community.size}</td>"
                f"<td>{members}</td><td>{escape(themes)}</td></tr>"
            )
        body = (
            "<h1>Behavioural communities</h1>"
            "<p class=\"muted\">pattern-similarity graph, link-strength "
            "label propagation</p>"
            "<table><tr><th>id</th><th>size</th><th>members</th>"
            f"<th>themes</th></tr>{''.join(rows)}</table>"
        )
        return _page("CrowdWeb — communities", body)

    # ----------------------------------------------------------- analytics

    def analytics(self) -> str:
        """Mobility analytics table for every profiled user."""
        from ..analysis import user_mobility_metrics

        rows = []
        for uid in sorted(self.result.profiles):
            try:
                m = user_mobility_metrics(self.result.dataset, uid)
            except ValueError:
                continue
            rows.append(
                f'<tr><td><a href="/user/{escape(uid)}">{escape(uid)}</a></td>'
                f"<td>{m.n_checkins}</td><td>{m.n_distinct_venues}</td>"
                f"<td>{m.radius_of_gyration_m / 1000:.1f}</td>"
                f"<td>{m.s_estimated:.2f}</td>"
                f"<td>{m.predictability_bound:.0%}</td></tr>"
            )
        body = (
            "<h1>Mobility analytics</h1>"
            "<p class=\"muted\">entropy and predictability bound "
            "(Song et al. 2010)</p>"
            "<table><tr><th>user</th><th>check-ins</th><th>venues</th>"
            "<th>r<sub>g</sub> (km)</th><th>S<sub>est</sub> (bits)</th>"
            f"<th>Π<sub>max</sub></th></tr>{''.join(rows)}</table>"
        )
        return _page("CrowdWeb — analytics", body)

    # ----------------------------------------------------------- animation

    def animation(self) -> str:
        """The automated crowd-movement animation (future-work feature).

        Frames are precomputed server-side; a few lines of vanilla JS cycle
        the dot positions.
        """
        from ..crowd import build_animation

        frames = build_animation(self.result.timeline, steps_per_transition=3)
        grid = self.result.grid
        payload = {
            "bbox": [grid.bbox.min_lat, grid.bbox.min_lon,
                     grid.bbox.max_lat, grid.bbox.max_lon],
            "frames": [f.to_dict() for f in frames],
        }
        body = (
            "<h1>Crowd movement animation</h1>"
            "<p class=\"muted\">Each dot is a user gliding between their "
            "pattern-grounded locations as the day progresses.</p>"
            '<svg id="anim" width="760" height="560" '
            'style="background:#f2f1ed;border-radius:6px"></svg>'
            '<p id="label" class="muted"></p>'
            f"<script>const DATA = {json.dumps(payload)};\n"
            "const svg = document.getElementById('anim');\n"
            "const [minLat, minLon, maxLat, maxLon] = DATA.bbox;\n"
            "function px(lon){return 10 + (lon - minLon) / (maxLon - minLon) * 740;}\n"
            "function py(lat){return 10 + (1 - (lat - minLat) / (maxLat - minLat)) * 540;}\n"
            "let i = 0;\n"
            "function tick(){\n"
            "  const f = DATA.frames[i];\n"
            "  svg.innerHTML = f.dots.map(d =>\n"
            "    `<circle cx='${px(d.lon)}' cy='${py(d.lat)}' r='5' "
            "fill='${d.moving ? '#eb6834' : '#2a78d6'}' stroke='#fcfcfb' "
            "stroke-width='2'><title>${d.user_id}: ${d.label}</title></circle>`\n"
            "  ).join('');\n"
            "  document.getElementById('label').textContent = "
            "`window ${f.window} (t=${f.t})`;\n"
            "  i = (i + 1) % DATA.frames.length;\n"
            "}\n"
            "tick(); setInterval(tick, 350);\n"
            "</script>"
        )
        return _page("CrowdWeb — animation", body)
