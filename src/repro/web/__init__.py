"""The CrowdWeb platform: JSON API, server-rendered pages, HTTP server."""

from .api import CrowdWebAPI
from .cache import CacheEntry, ResponseCache, dataset_fingerprint
from .pages import Pages
from .server import RETRY_AFTER_S, CrowdWebApp, CrowdWebServer, route_request
from .tiles import DEFAULT_MAX_ZOOM, TileIndex

__all__ = [
    "CacheEntry",
    "CrowdWebAPI",
    "CrowdWebApp",
    "CrowdWebServer",
    "DEFAULT_MAX_ZOOM",
    "Pages",
    "RETRY_AFTER_S",
    "ResponseCache",
    "TileIndex",
    "dataset_fingerprint",
    "route_request",
]
