"""The CrowdWeb platform: JSON API, server-rendered pages, HTTP server."""

from .api import CrowdWebAPI
from .pages import Pages
from .server import CrowdWebServer, route_request

__all__ = ["CrowdWebAPI", "CrowdWebServer", "Pages", "route_request"]
