"""The platform's JSON API, as plain functions over a pipeline result.

Keeping the API socket-free (dicts in, dicts out) makes it directly
testable; :mod:`repro.web.server` only adds HTTP plumbing on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis import user_mobility_metrics
from ..crowd import build_animation, detect_communities, window_flows
from ..data import dataset_stats
from ..pipeline import PipelineResult
from .tiles import TileIndex

__all__ = ["CrowdWebAPI"]


class CrowdWebAPI:
    """Query surface of the platform (users, patterns, crowd, flows)."""

    def __init__(self, result: PipelineResult) -> None:
        self.result = result
        self.tiles = TileIndex(result.grid, result.timeline)

    # --------------------------------------------------------------- users

    def users(self) -> Dict:
        """All users with their headline pattern stats."""
        rows = []
        for user_id in sorted(self.result.profiles):
            profile = self.result.profiles[user_id]
            rows.append(
                {
                    "user_id": user_id,
                    "n_patterns": profile.n_patterns,
                    "n_days": profile.n_days,
                    "top_labels": profile.labels()[:5],
                }
            )
        return {"n_users": len(rows), "users": rows}

    def user(self, user_id: str) -> Optional[Dict]:
        """One user's full profile, or ``None`` if unknown."""
        profile = self.result.profiles.get(user_id)
        if profile is None:
            return None
        return profile.to_dict()

    # --------------------------------------------------------------- crowd

    def crowd(self, bin_index: int) -> Dict:
        """The crowd snapshot whose window starts at ``bin_index``."""
        timeline = self.result.timeline
        n = len(timeline)
        if not (0 <= bin_index < n):
            raise IndexError(f"bin {bin_index} out of range [0, {n})")
        return timeline[bin_index].to_dict()

    def crowd_summary(self) -> Dict:
        """Occupancy of every window (the time slider's data)."""
        return {
            "windows": [
                {"index": i, "label": snap.window.label, "n_users": snap.n_users}
                for i, snap in enumerate(self.result.timeline)
            ]
        }

    def flows(self, bin_index: int) -> Dict:
        """Flows from window ``bin_index`` to the next window."""
        timeline = self.result.timeline
        n = len(timeline)
        if not (0 <= bin_index < n - 1):
            raise IndexError(f"flow source bin {bin_index} out of range [0, {n - 1})")
        flows = window_flows(timeline[bin_index], timeline[bin_index + 1])
        return {
            "from": timeline[bin_index].window.label,
            "to": timeline[bin_index + 1].window.label,
            "flows": [
                {
                    "origin": list(f.origin),
                    "destination": list(f.destination),
                    "users": list(f.user_ids),
                }
                for f in flows
            ],
        }

    def animation(self, steps_per_transition: int = 3) -> Dict:
        """The crowd-movement animation frame sequence."""
        frames = build_animation(self.result.timeline, steps_per_transition)
        return {"n_frames": len(frames), "frames": [f.to_dict() for f in frames]}

    def occupancy(self) -> Dict:
        """Per-microcell occupancy over all windows (the heatmap's data)."""
        matrix = self.result.aggregator.cell_occupancy_matrix()
        return {
            "windows": [snap.window.label for snap in self.result.timeline],
            "cells": [
                {"cell": list(cell), "cell_id": self.result.grid.cell(cell).cell_id,
                 "counts": counts}
                for cell, counts in sorted(matrix.items())
            ],
        }

    # --------------------------------------------------------------- tiles

    def tile(self, z: int, x: int, y: int, window: int = 9) -> Dict:
        """One city-view tile: aggregated cells at zoom ``z`` (see tiles.py)."""
        n = len(self.result.timeline)
        window = max(0, min(window, n - 1))
        return self.tiles.tile(z, x, y, window)

    def tile_scheme(self) -> Dict:
        """The tile coordinate scheme (zooms, factors, grid bbox)."""
        return self.tiles.scheme()

    # --------------------------------------------------------- communities

    def communities(self, min_similarity: float = 0.05) -> Dict:
        """Behavioural communities over the profiled users."""
        communities = detect_communities(self.result.profiles,
                                         min_similarity=min_similarity)
        return {
            "min_similarity": min_similarity,
            "communities": [
                {"id": c.community_id, "size": c.size, "users": list(c.user_ids)}
                for c in communities
            ],
        }

    def spikes(self, z_threshold: float = 4.0) -> Dict:
        """Crowd-anomaly spikes detected in the pipeline's dataset."""
        from ..crowd import detect_spikes

        found = detect_spikes(self.result.dataset, self.result.grid,
                              z_threshold=z_threshold)
        return {
            "z_threshold": z_threshold,
            "spikes": [
                {
                    "day": spike.day.isoformat(),
                    "cell": list(spike.cell),
                    "cell_id": self.result.grid.cell(spike.cell).cell_id,
                    "count": spike.count,
                    "baseline_mean": round(spike.baseline_mean, 2),
                    "z_score": round(spike.z_score, 2),
                    "n_users": spike.n_users,
                }
                for spike in found[:50]
            ],
        }

    # ----------------------------------------------------------- analytics

    def user_metrics(self, user_id: str) -> Optional[Dict]:
        """Mobility analytics for one user, or ``None`` if unknown/too thin."""
        if user_id not in self.result.profiles:
            return None
        try:
            metrics = user_mobility_metrics(self.result.dataset, user_id)
        except ValueError:
            return None
        return {
            "user_id": metrics.user_id,
            "n_checkins": metrics.n_checkins,
            "n_distinct_venues": metrics.n_distinct_venues,
            "radius_of_gyration_m": round(metrics.radius_of_gyration_m, 1),
            "median_jump_m": round(metrics.median_jump_m, 1),
            "top_location_share": round(metrics.top_location_share, 4),
            "entropy_random": round(metrics.s_random, 4),
            "entropy_uncorrelated": round(metrics.s_uncorrelated, 4),
            "entropy_estimated": round(metrics.s_estimated, 4),
            "predictability_bound": round(metrics.predictability_bound, 4),
        }

    # --------------------------------------------------------------- stats

    def stats(self) -> Dict:
        """Dataset statistics of the filtered dataset the pipeline used."""
        stats = dataset_stats(self.result.dataset)
        payload = {key: value for key, value in stats.as_rows()}
        if self.result.report is not None:
            payload["preprocess"] = {k: v for k, v in self.result.report.as_rows()}
        return payload
