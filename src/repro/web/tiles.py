"""Tiled, level-of-detail city view (the MovePattern-style serving scheme).

Instead of one monolithic city SVG, the client asks for
``/api/tiles/<z>/<x>/<y>?window=<i>`` and receives only the aggregated
microcells inside that tile, at the zoom level's granularity.

Coordinate scheme
-----------------
All arithmetic is **integer index math** over the microcell grid, so tile
membership is exact (no floating-point edge ambiguity):

* At zoom ``z`` (``0 .. max_zoom``) microcells are coarsened by
  ``factor(z) = 2 ** (max_zoom - z)``: microcell ``(row, col)`` lands in
  **block** ``(row // f, col // f)``.  At ``z = max_zoom`` a block *is* a
  microcell; at ``z = 0`` blocks merge ``2**max_zoom``-sized squares.
* The block grid (``ceil(n_rows / f) × ceil(n_cols / f)`` blocks) is
  partitioned into ``2**z × 2**z`` tiles by index ranges: tile ``x``
  covers block columns ``[x * tpc, (x + 1) * tpc)`` with
  ``tpc = ceil(b_cols / 2**z)`` (rows/``y`` analogous, counting from the
  grid's south-west origin like the grid itself).

Every block — and therefore every microcell — belongs to **exactly one**
tile per zoom level (:meth:`TileIndex.tile_of_block` is that function),
which is what the tile-boundary tests assert.

Aggregates per ``(window, zoom)`` are computed once from the window's
:class:`~repro.crowd.CrowdSnapshot` and memoized under a lock; the HTTP
layer then caches the rendered tile bytes in the
:class:`~repro.web.cache.ResponseCache`, so steady-state tile requests do
no aggregation at all.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Dict, List, Tuple

from ..crowd import CrowdTimeline
from ..geo import MicrocellGrid
from ..obs import get_observer

__all__ = ["DEFAULT_MAX_ZOOM", "TileIndex"]

#: Zoom levels 0..3: coarsening factors 8, 4, 2, 1.
DEFAULT_MAX_ZOOM = 3

BlockIndex = Tuple[int, int]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class TileIndex:
    """Tile/LOD queries over a crowd timeline (pure data, no sockets)."""

    def __init__(
        self,
        grid: MicrocellGrid,
        timeline: CrowdTimeline,
        max_zoom: int = DEFAULT_MAX_ZOOM,
    ) -> None:
        if max_zoom < 0:
            raise ValueError("max_zoom must be non-negative")
        self.grid = grid
        self.timeline = timeline
        self.max_zoom = max_zoom
        self._lock = threading.Lock()
        self._aggregates: Dict[Tuple[int, int], Dict[BlockIndex, Tuple[int, str]]] = {}

    # -------------------------------------------------------------- geometry

    def factor(self, z: int) -> int:
        """Microcells per block edge at zoom ``z``."""
        if not (0 <= z <= self.max_zoom):
            raise ValueError(
                f"zoom {z} out of range [0, {self.max_zoom}]"
            )
        return 2 ** (self.max_zoom - z)

    def block_dims(self, z: int) -> Tuple[int, int]:
        """(block rows, block cols) of the coarsened grid at zoom ``z``."""
        f = self.factor(z)
        return _ceil_div(self.grid.n_rows, f), _ceil_div(self.grid.n_cols, f)

    def tile_span(self, z: int) -> Tuple[int, int]:
        """(block rows, block cols) covered by one tile at zoom ``z``."""
        b_rows, b_cols = self.block_dims(z)
        n = 2 ** z
        return _ceil_div(b_rows, n), _ceil_div(b_cols, n)

    def tile_of_block(self, z: int, block: BlockIndex) -> Tuple[int, int]:
        """The unique ``(x, y)`` tile containing a block at zoom ``z``."""
        tpr, tpc = self.tile_span(z)
        row, col = block
        return col // tpc, row // tpr

    def block_bbox(self, z: int, block: BlockIndex) -> Tuple[float, float, float, float]:
        """``[min_lat, min_lon, max_lat, max_lon]`` of a block's microcells."""
        f = self.factor(z)
        row, col = block
        r0, c0 = row * f, col * f
        r1 = min(r0 + f, self.grid.n_rows) - 1
        c1 = min(c0 + f, self.grid.n_cols) - 1
        low = self.grid.cell((r0, c0)).bbox
        high = self.grid.cell((r1, c1)).bbox
        return low.min_lat, low.min_lon, high.max_lat, high.max_lon

    # ------------------------------------------------------------ aggregates

    def blocks(self, window: int, z: int) -> Dict[BlockIndex, Tuple[int, str]]:
        """Per-block ``(count, top_label)`` for one window at one zoom.

        Computed once per ``(window, zoom)`` from the snapshot's placements
        and memoized; concurrent first callers may both build, but exactly
        one result is kept (``setdefault``), so callers always agree.
        """
        if not (0 <= window < len(self.timeline)):
            raise ValueError(
                f"window {window} out of range [0, {len(self.timeline)})"
            )
        self.factor(z)  # validates z
        memo_key = (window, z)
        with self._lock:
            cached = self._aggregates.get(memo_key)
        if cached is not None:
            return cached
        built = self._build_blocks(window, z)
        with self._lock:
            return self._aggregates.setdefault(memo_key, built)

    def _build_blocks(self, window: int, z: int) -> Dict[BlockIndex, Tuple[int, str]]:
        f = self.factor(z)
        counts: Dict[BlockIndex, int] = {}
        labels: Dict[BlockIndex, Counter] = {}
        for placement in self.timeline[window].placements:
            row, col = placement.cell
            block = (row // f, col // f)
            counts[block] = counts.get(block, 0) + 1
            bucket = labels.get(block)
            if bucket is None:
                bucket = labels[block] = Counter()
            bucket[placement.label] += 1
        aggregated: Dict[BlockIndex, Tuple[int, str]] = {}
        for block, count in counts.items():
            # Deterministic top label: highest count, ties broken by name.
            top = min(labels[block].items(), key=lambda kv: (-kv[1], kv[0]))[0]
            aggregated[block] = (count, top)
        return aggregated

    def invalidate(self) -> None:
        """Drop the memoized aggregates (paired with a cache refresh)."""
        with self._lock:
            self._aggregates.clear()

    # ----------------------------------------------------------------- tiles

    def tile(self, z: int, x: int, y: int, window: int) -> Dict:
        """The JSON payload of one tile: its bbox and aggregated cells.

        ``cells`` lists only the tile's *occupied* blocks, sorted by
        ``(row, col)`` so the payload is deterministic and diffable.
        """
        n = 2 ** z
        self.factor(z)  # validates z before x/y range checks use it
        if not (0 <= x < n and 0 <= y < n):
            raise ValueError(
                f"tile ({x}, {y}) out of range [0, {n}) at zoom {z}"
            )
        tpr, tpc = self.tile_span(z)
        b_rows, b_cols = self.block_dims(z)
        row_lo, row_hi = y * tpr, min((y + 1) * tpr, b_rows)
        col_lo, col_hi = x * tpc, min((x + 1) * tpc, b_cols)

        observer = get_observer()
        start = time.perf_counter()
        blocks = self.blocks(window, z)
        cells: List[Dict] = []
        for block in sorted(blocks):
            row, col = block
            if row_lo <= row < row_hi and col_lo <= col < col_hi:
                count, top_label = blocks[block]
                cells.append(
                    {
                        "row": row,
                        "col": col,
                        "count": count,
                        "top_label": top_label,
                        "bbox": list(self.block_bbox(z, block)),
                    }
                )
        observer.observe(
            "repro_web_tile_render_latency_s", time.perf_counter() - start
        )

        payload: Dict = {
            "z": z,
            "x": x,
            "y": y,
            "window": window,
            "window_label": self.timeline[window].window.label,
            "cell_factor": self.factor(z),
            "n_users": sum(cell["count"] for cell in cells),
            "cells": cells,
        }
        if row_lo < row_hi and col_lo < col_hi:
            low = self.block_bbox(z, (row_lo, col_lo))
            high = self.block_bbox(z, (row_hi - 1, col_hi - 1))
            payload["bbox"] = [low[0], low[1], high[2], high[3]]
        else:
            payload["bbox"] = None  # tile beyond the block grid: valid, empty
        return payload

    def scheme(self) -> Dict:
        """The tile-scheme description served at ``/api/tiles``."""
        bbox = self.grid.bbox
        return {
            "max_zoom": self.max_zoom,
            "n_rows": self.grid.n_rows,
            "n_cols": self.grid.n_cols,
            "cell_size_m": self.grid.cell_size_m,
            "bbox": [bbox.min_lat, bbox.min_lon, bbox.max_lat, bbox.max_lon],
            "n_windows": len(self.timeline),
            "windows": [snap.window.label for snap in self.timeline],
            "zooms": [
                {
                    "z": z,
                    "cell_factor": self.factor(z),
                    "n_tiles": 2 ** z,
                    "block_rows": self.block_dims(z)[0],
                    "block_cols": self.block_dims(z)[1],
                }
                for z in range(self.max_zoom + 1)
            ],
        }
