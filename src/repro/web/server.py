"""The HTTP layer of the platform: a cached, threaded service architecture.

Routes
------
===============================  =======================================
``GET /``                        dashboard (preprocess summary, occupancy)
``GET /users``                   user directory
``GET /user/<id>``               one user's patterns + place graph
``GET /city?window=<i>&zoom=<z>`` the tiled crowd view at one time window
``GET /animation``               the automated crowd-movement animation
``GET /api/users``               JSON user list
``GET /api/user/<id>``           JSON profile
``GET /api/crowd/<i>``           JSON snapshot
``GET /api/crowd``               JSON occupancy summary
``GET /api/flows/<i>``           JSON flows window i → i+1
``GET /api/tiles``               JSON tile-scheme description
``GET /api/tiles/<z>/<x>/<y>``   JSON tile (``?window=<i>``)
``GET /api/animation``           JSON animation frames
``GET /api/stats``               JSON dataset statistics
``GET /api/occupancy``           JSON per-cell occupancy across all windows
``GET /api/communities``         JSON behavioural communities
``GET /api/metrics/<id>``        JSON mobility analytics for one user
``GET /api/cache``               JSON cache state (entries, generation)
``GET|POST /api/refresh``        invalidate the response cache
``GET /metrics``                 JSON observability snapshot (never cached)
===============================  =======================================

Service architecture (see ``docs/serving.md``)
----------------------------------------------
:class:`CrowdWebApp` is the socket-free service core: a render function
(:func:`_dispatch` over :class:`~repro.web.api.CrowdWebAPI` /
:class:`~repro.web.pages.Pages`) behind a
:class:`~repro.web.cache.ResponseCache`.  The hot path is a dict lookup:
cacheable routes render **once**, then serve pre-encoded bytes with strong
ETags, ``Last-Modified``, ``304`` revalidation, and pre-compressed gzip
twins.  :class:`CrowdWebServer` adds the ``ThreadingHTTPServer`` plumbing
— and binds its socket *before* the pipeline result exists: constructed
with ``result_factory``, it answers ``503`` + ``Retry-After`` while the
precompute is in flight instead of leaving the first client hanging.

Every request runs inside a ``web.request`` trace span with latency
recorded per normalized endpoint (``/user/:id``); cache misses add a
``web.render`` child span.  All of it is a no-op until observability is
enabled.
"""

from __future__ import annotations

import json
import threading
import time
from email.utils import parsedate_to_datetime
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlencode, urlparse

from ..obs import get_observer
from ..pipeline import PipelineResult
from .api import CrowdWebAPI
from .cache import CacheEntry, CacheKey, ResponseCache, dataset_fingerprint
from .pages import Pages

__all__ = ["CrowdWebApp", "CrowdWebServer", "RETRY_AFTER_S", "route_request"]

#: ``Retry-After`` seconds advertised while the pipeline precompute runs.
RETRY_AFTER_S = 1

#: Routes that must never be served from (or stored into) the cache.
_UNCACHEABLE = frozenset({"/metrics", "/api/refresh", "/api/cache"})

HeaderList = List[Tuple[str, str]]
WebResponse = Tuple[int, HeaderList, bytes]


def _endpoint_of(segments: List[str]) -> str:
    """Normalize a request path to a bounded-cardinality endpoint label.

    Keeps the leading route words (two after ``api``, one otherwise) and
    collapses the trailing identifier segments to ``:id``.
    """
    if not segments:
        return "/"
    keep = 2 if segments[0] == "api" else 1
    parts = segments[:keep] + [":id"] * min(1, len(segments) - keep)
    return "/" + "/".join(parts)


def _dispatch(api: CrowdWebAPI, pages: Pages, parsed, segments, query) -> Tuple[int, str, str]:
    """The routing table proper (wrapped by :func:`route_request`)."""

    def ok_json(payload) -> Tuple[int, str, str]:
        return 200, "application/json", json.dumps(payload)

    def ok_html(body: str) -> Tuple[int, str, str]:
        return 200, "text/html; charset=utf-8", body

    def not_found(message: str = "not found") -> Tuple[int, str, str]:
        return 404, "application/json", json.dumps({"error": message})

    try:
        if not segments:
            return ok_html(pages.home())
        if segments[0] == "users":
            return ok_html(pages.users())
        if segments[0] == "user" and len(segments) == 2:
            page = pages.user(segments[1])
            return ok_html(page) if page is not None else not_found(f"user {segments[1]}")
        if segments[0] == "city":
            window = int(query.get("window", ["9"])[0])
            zoom = int(query.get("zoom", ["2"])[0])
            return ok_html(pages.city(window, zoom=zoom))
        if segments[0] == "animation":
            return ok_html(pages.animation())
        if segments[0] == "occupancy":
            return ok_html(pages.occupancy())
        if segments[0] == "communities":
            return ok_html(pages.communities())
        if segments[0] == "analytics":
            return ok_html(pages.analytics())
        if segments[0] == "metrics" and len(segments) == 1:
            return ok_json(get_observer().metrics_payload())
        if segments[0] == "api":
            if len(segments) == 2 and segments[1] == "users":
                return ok_json(api.users())
            if len(segments) == 3 and segments[1] == "user":
                payload = api.user(segments[2])
                return ok_json(payload) if payload is not None else not_found(
                    f"user {segments[2]}"
                )
            if len(segments) == 2 and segments[1] == "crowd":
                return ok_json(api.crowd_summary())
            if len(segments) == 3 and segments[1] == "crowd":
                return ok_json(api.crowd(int(segments[2])))
            if len(segments) == 3 and segments[1] == "flows":
                return ok_json(api.flows(int(segments[2])))
            if len(segments) == 2 and segments[1] == "tiles":
                return ok_json(api.tile_scheme())
            if len(segments) == 5 and segments[1] == "tiles":
                window = int(query.get("window", ["9"])[0])
                return ok_json(
                    api.tile(
                        int(segments[2]), int(segments[3]), int(segments[4]),
                        window=window,
                    )
                )
            if len(segments) == 2 and segments[1] == "animation":
                return ok_json(api.animation())
            if len(segments) == 2 and segments[1] == "stats":
                return ok_json(api.stats())
            if len(segments) == 2 and segments[1] == "occupancy":
                return ok_json(api.occupancy())
            if len(segments) == 2 and segments[1] == "communities":
                min_similarity = float(query.get("min_similarity", ["0.05"])[0])
                return ok_json(api.communities(min_similarity))
            if len(segments) == 2 and segments[1] == "spikes":
                z = float(query.get("z", ["4.0"])[0])
                return ok_json(api.spikes(z))
            if len(segments) == 3 and segments[1] == "metrics":
                payload = api.user_metrics(segments[2])
                return ok_json(payload) if payload is not None else not_found(
                    f"metrics for {segments[2]}"
                )
        return not_found(parsed.path)
    except (ValueError, IndexError) as exc:
        return 400, "application/json", json.dumps({"error": str(exc)})


def route_request(api: CrowdWebAPI, pages: Pages, path: str) -> Tuple[int, str, str]:
    """Dispatch one GET request path → (status, content_type, body).

    Pure function (no sockets, no cache) so the whole routing table is
    unit-testable; the served hot path is :meth:`CrowdWebApp.handle`,
    which wraps the same dispatch in the response cache.  When
    observability is enabled the request is traced and its latency
    recorded per normalized endpoint.
    """
    parsed = urlparse(path)
    segments = [s for s in parsed.path.split("/") if s]
    query = parse_qs(parsed.query)

    observer = get_observer()
    if not observer.enabled:
        return _dispatch(api, pages, parsed, segments, query)

    endpoint = _endpoint_of(segments)
    with observer.span("web.request", endpoint=endpoint) as span:
        start = time.perf_counter()
        status, content_type, body = _dispatch(api, pages, parsed, segments, query)
        elapsed_s = time.perf_counter() - start
        span.set("status", status)
        observer.observe("repro_web_request_latency_s", elapsed_s, label=endpoint)
        observer.inc("repro_web_requests_total", label=endpoint)
        if status >= 400:
            observer.inc("repro_web_errors_total", label=endpoint)
    return status, content_type, body


def _header(headers: Optional[Mapping], name: str) -> Optional[str]:
    """A request header by name from a Message or a plain dict."""
    if headers is None:
        return None
    value = headers.get(name)
    if value is None:
        value = headers.get(name.lower())
    return value


class CrowdWebApp:
    """The socket-free service core: render functions behind a response cache.

    ``handle`` is everything the HTTP handler does per request; it takes
    the method, raw path, and request headers and returns
    ``(status, header_list, body_bytes)`` — directly testable without a
    socket, and shared by the warm-up precompute.
    """

    def __init__(self, result: PipelineResult, cache_entries: int = 512) -> None:
        self.result = result
        self.api = CrowdWebAPI(result)
        self.pages = Pages(result)
        self.fingerprint = dataset_fingerprint(result)
        self.cache = ResponseCache(self.fingerprint, max_entries=cache_entries)

    # ------------------------------------------------------------- requests

    def handle(
        self, method: str, path: str, headers: Optional[Mapping] = None
    ) -> WebResponse:
        """Serve one request: cache lookup, conditional, content negotiation."""
        parsed = urlparse(path)
        segments = [s for s in parsed.path.split("/") if s]
        query = parse_qs(parsed.query)

        observer = get_observer()
        if not observer.enabled:
            return self._handle_inner(method, parsed, segments, query, headers)

        endpoint = _endpoint_of(segments)
        with observer.span("web.request", endpoint=endpoint) as span:
            start = time.perf_counter()
            status, out_headers, body = self._handle_inner(
                method, parsed, segments, query, headers
            )
            elapsed_s = time.perf_counter() - start
            span.set("status", status)
            observer.observe("repro_web_request_latency_s", elapsed_s, label=endpoint)
            observer.inc("repro_web_requests_total", label=endpoint)
            observer.inc("repro_web_response_bytes", len(body))
            if status >= 400:
                observer.inc("repro_web_errors_total", label=endpoint)
        return status, out_headers, body

    def _handle_inner(
        self, method: str, parsed, segments, query, headers: Optional[Mapping]
    ) -> WebResponse:
        normalized = "/" + "/".join(segments)
        if method == "POST":
            if normalized == "/api/refresh":
                return self._refresh()
            return self._json_response(404, {"error": f"no POST route {normalized}"})
        if normalized == "/api/refresh":
            return self._refresh()
        if normalized == "/api/cache":
            return self._json_response(200, self.cache.info())
        if normalized == "/metrics":
            payload = get_observer().metrics_payload()
            status, out_headers, body = self._json_response(200, payload)
            return status, out_headers + [("Cache-Control", "no-store")], body

        key = self._cache_key(segments, query)
        entry = self.cache.lookup(key)
        if entry is None:
            status, content_type, text = self._render(parsed, segments, query)
            if status != 200:
                # Errors are never cached (and carry no validators).
                return status, [("Content-Type", content_type)], text.encode("utf-8")
            entry = self.cache.store(key, text.encode("utf-8"), content_type)
        return self._serve_entry(entry, headers)

    def _cache_key(self, segments, query) -> CacheKey:
        canonical_query = urlencode(
            sorted((name, value) for name, values in query.items() for value in values)
        )
        return self.cache.key("GET", "/" + "/".join(segments), canonical_query)

    def _render(self, parsed, segments, query) -> Tuple[int, str, str]:
        """One real render (a cache miss): traced and counted."""
        observer = get_observer()
        if not observer.enabled:
            return _dispatch(self.api, self.pages, parsed, segments, query)
        endpoint = _endpoint_of(segments)
        with observer.span("web.render", endpoint=endpoint):
            start = time.perf_counter()
            result = _dispatch(self.api, self.pages, parsed, segments, query)
            observer.observe(
                "repro_web_render_latency_s",
                time.perf_counter() - start,
                label=endpoint,
            )
            observer.inc("repro_web_renders_total")
        return result

    def _serve_entry(self, entry: CacheEntry, headers: Optional[Mapping]) -> WebResponse:
        observer = get_observer()
        validators: HeaderList = [
            ("ETag", entry.etag),
            ("Last-Modified", entry.last_modified),
            ("Vary", "Accept-Encoding"),
        ]
        if self._not_modified(entry, headers):
            observer.inc("repro_web_not_modified_total")
            return 304, validators, b""
        body = entry.body
        out_headers = [("Content-Type", entry.content_type)] + validators
        accept = _header(headers, "Accept-Encoding") or ""
        if entry.gzip_body is not None and "gzip" in accept.lower():
            body = entry.gzip_body
            out_headers.append(("Content-Encoding", "gzip"))
            observer.inc("repro_web_gzip_responses_total")
        return 200, out_headers, body

    @staticmethod
    def _not_modified(entry: CacheEntry, headers: Optional[Mapping]) -> bool:
        """Does the request's validator still match this entry?"""
        if_none_match = _header(headers, "If-None-Match")
        if if_none_match is not None:
            candidates = [tag.strip() for tag in if_none_match.split(",")]
            return entry.etag in candidates or "*" in candidates
        if_modified_since = _header(headers, "If-Modified-Since")
        if if_modified_since is not None:
            try:
                their_time = parsedate_to_datetime(if_modified_since)
                our_time = parsedate_to_datetime(entry.last_modified)
            except (TypeError, ValueError):
                return False
            return our_time <= their_time
        return False

    @staticmethod
    def _json_response(status: int, payload: Dict) -> WebResponse:
        return (
            status,
            [("Content-Type", "application/json")],
            json.dumps(payload).encode("utf-8"),
        )

    def _refresh(self) -> WebResponse:
        """Explicit invalidation: drop cached responses and tile aggregates."""
        dropped = self.cache.invalidate()
        self.api.tiles.invalidate()
        return self._json_response(
            200, {"invalidated": dropped, "generation": self.cache.generation}
        )

    # -------------------------------------------------------------- warm-up

    def warm_paths(self) -> List[str]:
        """The hot key space: crowd windows, tiles, and per-user fragments."""
        paths = ["/", "/users", "/api/users", "/api/stats", "/api/crowd",
                 "/api/occupancy", "/api/tiles"]
        n_windows = len(self.result.timeline)
        tiles = self.api.tiles
        warm_zoom = min(1, tiles.max_zoom)
        for window in range(n_windows):
            paths.append(f"/api/crowd/{window}")
            paths.append(f"/city?window={window}")
            for zoom in range(warm_zoom + 1):
                for x in range(2 ** zoom):
                    for y in range(2 ** zoom):
                        paths.append(f"/api/tiles/{zoom}/{x}/{y}?window={window}")
        for user_id in sorted(self.result.profiles):
            paths.append(f"/api/user/{user_id}")
            paths.append(f"/user/{user_id}")
        return paths

    def warm(self) -> int:
        """Precompute the hot key space; returns entries materialized.

        Runs through :meth:`handle`, so warmed routes are byte-identical to
        served ones and land in the same cache.
        """
        observer = get_observer()
        warmed = 0
        with observer.span("web.precompute"):
            for path in self.warm_paths():
                status, _headers, _body = self.handle("GET", path, None)
                if status == 200:
                    warmed += 1
            observer.inc("repro_web_precomputed_total", warmed)
        return warmed


class CrowdWebServer:
    """The platform server.  ``serve_forever`` blocks; ``start`` runs in a
    daemon thread (used by tests and the examples).

    Constructed with a ready ``result``, it serves immediately.  Constructed
    with ``result_factory``, it binds its socket right away and builds the
    pipeline result in a background thread — requests arriving meanwhile get
    ``503`` with ``Retry-After: 1`` instead of a hung or refused connection.
    ``warm=True`` additionally precomputes the hot key space in the
    background once the result is in.
    """

    def __init__(
        self,
        result: Optional[PipelineResult] = None,
        host: str = "127.0.0.1",
        port: int = 8460,
        *,
        result_factory: Optional[Callable[[], PipelineResult]] = None,
        warm: bool = False,
        cache_entries: int = 512,
    ) -> None:
        if (result is None) == (result_factory is None):
            raise ValueError("pass exactly one of result= or result_factory=")
        self._app: Optional[CrowdWebApp] = None
        self._app_error: Optional[str] = None
        self._app_lock = threading.Lock()
        self._ready = threading.Event()
        self._warm = warm
        self._cache_entries = cache_entries
        owner = self

        class Handler(BaseHTTPRequestHandler):
            # Keep-alive: the load-bearing half of the keep-alive hot path —
            # requires every response to carry an exact Content-Length,
            # which _respond guarantees.
            protocol_version = "HTTP/1.1"
            # Nagle + delayed ACK adds tens of ms per request on a reused
            # connection; cached responses are single writes, so just send.
            disable_nagle_algorithm = True

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                self._serve("GET")

            def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
                self._serve("POST")

            def _serve(self, method: str) -> None:
                app = owner._app
                if app is None:
                    # Not ready (warming up, or the build failed): drain any
                    # request body so a keep-alive client that already sent
                    # one is not left mid-stream, tell it to reconnect later
                    # with Connection: close, and actually close our side.
                    self._drain_body()
                    status, headers, body = owner._unready_response()
                    self._respond(status, headers + [("Connection", "close")], body)
                    # Each connection gets its own Handler instance, so this
                    # flag is never shared across request threads.
                    self.close_connection = True  # crowdlint: disable=CW701 -- per-connection instance state
                    return
                try:
                    status, headers, body = app.handle(method, self.path, self.headers)
                except Exception as exc:  # noqa: BLE001 - keep the worker alive
                    payload = json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    ).encode("utf-8")
                    status, headers, body = (
                        500, [("Content-Type", "application/json")], payload
                    )
                self._respond(status, headers, body)

            def _drain_body(self) -> None:
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                except ValueError:
                    length = 0
                if length > 0:
                    self.rfile.read(length)

            def _respond(self, status: int, headers: HeaderList, body: bytes) -> None:
                self.send_response(status)
                for name, value in headers:
                    self.send_header(name, value)
                if status != 304:
                    self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if body and status != 304:
                    self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                pass  # quiet by default; the CLI prints the URL once

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None
        self._builder: Optional[threading.Thread] = None
        if result is not None:
            self._install_result(result)
        else:
            self._builder = threading.Thread(
                target=self._build_and_install, args=(result_factory,), daemon=True
            )
            self._builder.start()

    # ------------------------------------------------------------ readiness

    def _install_result(self, result: PipelineResult) -> None:
        app = CrowdWebApp(result, cache_entries=self._cache_entries)
        with self._app_lock:
            self._app = app
        self._ready.set()
        if self._warm:
            threading.Thread(target=app.warm, daemon=True).start()

    def _build_and_install(self, factory: Callable[[], PipelineResult]) -> None:
        try:
            result = factory()
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500 body
            with self._app_lock:
                self._app_error = f"{type(exc).__name__}: {exc}"
            self._ready.set()
            return
        self._install_result(result)

    def _unready_response(self) -> WebResponse:
        error = self._app_error
        if error is not None:
            payload = json.dumps({"error": f"pipeline build failed: {error}"})
            return 500, [("Content-Type", "application/json")], payload.encode("utf-8")
        payload = json.dumps(
            {
                "error": "service warming up: pipeline precompute in flight",
                "retry_after_s": RETRY_AFTER_S,
            }
        )
        headers: HeaderList = [
            ("Content-Type", "application/json"),
            ("Retry-After", str(RETRY_AFTER_S)),
        ]
        return 503, headers, payload.encode("utf-8")

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until the pipeline result is in (True) or failed/timed out."""
        if not self._ready.wait(timeout):
            return False
        return self._app is not None

    # ------------------------------------------------------------ accessors

    @property
    def app(self) -> CrowdWebApp:
        app = self._app
        if app is None:
            raise RuntimeError(
                "server is still preparing its pipeline result "
                f"({self._app_error or 'precompute in flight'})"
            )
        return app

    @property
    def api(self) -> CrowdWebAPI:
        return self.app.api

    @property
    def pages(self) -> Pages:
        return self.app.pages

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "CrowdWebServer":
        """Serve in a background daemon thread (returns immediately)."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
