"""The HTTP layer of the platform: stdlib server over API + pages.

Routes
------
==========================  =======================================
``GET /``                   dashboard (preprocess summary, occupancy)
``GET /users``              user directory
``GET /user/<id>``          one user's patterns + place graph
``GET /city?window=<i>``    the crowd at one time window
``GET /animation``          the automated crowd-movement animation
``GET /api/users``          JSON user list
``GET /api/user/<id>``      JSON profile
``GET /api/crowd/<i>``      JSON snapshot
``GET /api/crowd``          JSON occupancy summary
``GET /api/flows/<i>``      JSON flows window i → i+1
``GET /api/animation``      JSON animation frames
``GET /api/stats``          JSON dataset statistics
``GET /api/occupancy``      JSON per-cell occupancy across all windows
``GET /api/communities``    JSON behavioural communities (?min_similarity=)
``GET /api/metrics/<id>``   JSON mobility analytics for one user
``GET /metrics``            JSON observability snapshot (:mod:`repro.obs`)
==========================  =======================================

Every request runs inside a ``web.request`` trace span, and its latency is
recorded in the ``repro_web_request_latency_s`` histogram under a
*normalized* endpoint label (``/user/:id``, not ``/user/u042``) so metric
cardinality stays bounded.  All of that is a no-op until observability is
enabled (``repro.obs.enable()`` or ``--trace`` on the CLI).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs import get_observer
from ..pipeline import PipelineResult
from .api import CrowdWebAPI
from .pages import Pages

__all__ = ["CrowdWebServer", "route_request"]


def _endpoint_of(segments: List[str]) -> str:
    """Normalize a request path to a bounded-cardinality endpoint label.

    Keeps the leading route words (two after ``api``, one otherwise) and
    collapses the trailing identifier segments to ``:id``.
    """
    if not segments:
        return "/"
    keep = 2 if segments[0] == "api" else 1
    parts = segments[:keep] + [":id"] * min(1, len(segments) - keep)
    return "/" + "/".join(parts)


def _dispatch(api: CrowdWebAPI, pages: Pages, parsed, segments, query) -> Tuple[int, str, str]:
    """The routing table proper (wrapped by :func:`route_request`)."""

    def ok_json(payload) -> Tuple[int, str, str]:
        return 200, "application/json", json.dumps(payload)

    def ok_html(body: str) -> Tuple[int, str, str]:
        return 200, "text/html; charset=utf-8", body

    def not_found(message: str = "not found") -> Tuple[int, str, str]:
        return 404, "application/json", json.dumps({"error": message})

    try:
        if not segments:
            return ok_html(pages.home())
        if segments[0] == "users":
            return ok_html(pages.users())
        if segments[0] == "user" and len(segments) == 2:
            page = pages.user(segments[1])
            return ok_html(page) if page is not None else not_found(f"user {segments[1]}")
        if segments[0] == "city":
            window = int(query.get("window", ["9"])[0])
            return ok_html(pages.city(window))
        if segments[0] == "animation":
            return ok_html(pages.animation())
        if segments[0] == "occupancy":
            return ok_html(pages.occupancy())
        if segments[0] == "communities":
            return ok_html(pages.communities())
        if segments[0] == "analytics":
            return ok_html(pages.analytics())
        if segments[0] == "metrics" and len(segments) == 1:
            return ok_json(get_observer().metrics_payload())
        if segments[0] == "api":
            if len(segments) == 2 and segments[1] == "users":
                return ok_json(api.users())
            if len(segments) == 3 and segments[1] == "user":
                payload = api.user(segments[2])
                return ok_json(payload) if payload is not None else not_found(
                    f"user {segments[2]}"
                )
            if len(segments) == 2 and segments[1] == "crowd":
                return ok_json(api.crowd_summary())
            if len(segments) == 3 and segments[1] == "crowd":
                return ok_json(api.crowd(int(segments[2])))
            if len(segments) == 3 and segments[1] == "flows":
                return ok_json(api.flows(int(segments[2])))
            if len(segments) == 2 and segments[1] == "animation":
                return ok_json(api.animation())
            if len(segments) == 2 and segments[1] == "stats":
                return ok_json(api.stats())
            if len(segments) == 2 and segments[1] == "occupancy":
                return ok_json(api.occupancy())
            if len(segments) == 2 and segments[1] == "communities":
                min_similarity = float(query.get("min_similarity", ["0.05"])[0])
                return ok_json(api.communities(min_similarity))
            if len(segments) == 2 and segments[1] == "spikes":
                z = float(query.get("z", ["4.0"])[0])
                return ok_json(api.spikes(z))
            if len(segments) == 3 and segments[1] == "metrics":
                payload = api.user_metrics(segments[2])
                return ok_json(payload) if payload is not None else not_found(
                    f"metrics for {segments[2]}"
                )
        return not_found(parsed.path)
    except (ValueError, IndexError) as exc:
        return 400, "application/json", json.dumps({"error": str(exc)})


def route_request(api: CrowdWebAPI, pages: Pages, path: str) -> Tuple[int, str, str]:
    """Dispatch one GET request path → (status, content_type, body).

    Pure function (no sockets) so the whole routing table is unit-testable.
    When observability is enabled the request is traced and its latency
    recorded per normalized endpoint; disabled, this adds one attribute
    check over the raw dispatch.
    """
    parsed = urlparse(path)
    segments = [s for s in parsed.path.split("/") if s]
    query = parse_qs(parsed.query)

    observer = get_observer()
    if not observer.enabled:
        return _dispatch(api, pages, parsed, segments, query)

    endpoint = _endpoint_of(segments)
    with observer.span("web.request", endpoint=endpoint) as span:
        start = time.perf_counter()
        status, content_type, body = _dispatch(api, pages, parsed, segments, query)
        elapsed_s = time.perf_counter() - start
        span.set("status", status)
        observer.observe("repro_web_request_latency_s", elapsed_s, label=endpoint)
        observer.inc("repro_web_requests_total", label=endpoint)
        if status >= 400:
            observer.inc("repro_web_errors_total", label=endpoint)
    return status, content_type, body


class CrowdWebServer:
    """The platform server.  ``serve_forever`` blocks; ``start`` runs in a
    daemon thread (used by tests and the examples)."""

    def __init__(self, result: PipelineResult, host: str = "127.0.0.1", port: int = 8460) -> None:
        self.api = CrowdWebAPI(result)
        self.pages = Pages(result)
        api, pages = self.api, self.pages

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                status, content_type, body = route_request(api, pages, self.path)
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, format: str, *args) -> None:
                pass  # quiet by default; the CLI prints the URL once

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "CrowdWebServer":
        """Serve in a background daemon thread (returns immediately)."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
