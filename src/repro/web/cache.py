"""The precomputed-response cache behind the serving hot path.

The ROADMAP's serving target is "the hot path is a dict lookup": every
cacheable route is rendered **once** (at warm-up or on first request),
then served as pre-encoded bytes with a strong ETag, a ``Last-Modified``
stamp, and — when the client accepts it — a pre-compressed gzip body that
was produced alongside the raw payload.  A request that hits the cache
does no rendering, no JSON encoding, and no compression; a request that
revalidates with ``If-None-Match`` does not even transfer the body.

Keys and invalidation
---------------------
Every key starts with the **dataset fingerprint** — a content hash of the
served :class:`~repro.pipeline.PipelineResult`'s identity (dataset name,
record/user counts, grid geometry, timeline length, pipeline config) — so
two servers over different data can never alias, and a cache carried
across a dataset swap self-invalidates.  The remaining key parts name the
route (normalized path + sorted query).  Explicit invalidation
(``/api/refresh``) bumps a **generation** counter: entries are dropped,
ETags change (the generation is hashed into them), and stores raced from
stale renders are discarded.

Concurrency
-----------
The cache is shared by every handler thread of the
``ThreadingHTTPServer``.  All mutation happens under one internal lock
(``_lock``); expensive work — rendering, hashing, gzip — happens *outside*
it, so the lock is only ever held for dict operations.  The CW7xx race
pack verifies this shape statically (``crowdweb-lint --threads`` infers
``_lock`` as the guard of ``_entries`` / ``_generation``).

Metrics (when :mod:`repro.obs` is enabled)
------------------------------------------
``repro_web_cache_hits_total`` / ``repro_web_cache_misses_total``,
``repro_web_cache_evictions_total``, ``repro_web_cache_invalidations_total``
and the gauge ``repro_web_cache_entries_size``.
"""

from __future__ import annotations

import gzip
import hashlib
import threading
import time
from collections import OrderedDict
from email.utils import formatdate
from typing import Optional, Tuple

from ..obs import get_observer
from ..pipeline import PipelineResult

__all__ = [
    "CacheEntry",
    "CacheKey",
    "MIN_GZIP_BYTES",
    "ResponseCache",
    "dataset_fingerprint",
]

#: A cache key: the dataset fingerprint followed by route-identifying parts.
CacheKey = Tuple[str, ...]

#: Bodies smaller than this are served identity-only: the gzip container
#: overhead would eat the savings, so no compressed twin is materialized.
MIN_GZIP_BYTES = 256


def dataset_fingerprint(result: PipelineResult) -> str:
    """A stable content hash of what this pipeline result serves.

    Covers the dataset identity (name, record and user counts), the grid
    geometry, the timeline length, and the pipeline config repr — enough
    that any input or configuration change yields a different fingerprint,
    and with it different cache keys and ETags.
    """
    parts = (
        result.dataset.name,
        str(len(result.dataset)),
        str(result.dataset.n_users),
        f"{result.grid.n_rows}x{result.grid.n_cols}",
        str(len(result.timeline)),
        repr(result.config),
    )
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


class CacheEntry:
    """One pre-rendered response: raw bytes, gzip twin, and its validators."""

    __slots__ = ("body", "content_type", "etag", "last_modified", "gzip_body",
                 "generation")

    def __init__(
        self,
        body: bytes,
        content_type: str,
        etag: str,
        last_modified: str,
        gzip_body: Optional[bytes],
        generation: int,
    ) -> None:
        self.body = body
        self.content_type = content_type
        self.etag = etag
        self.last_modified = last_modified
        self.gzip_body = gzip_body
        self.generation = generation

    @property
    def n_bytes(self) -> int:
        """Resident payload bytes (raw body plus the gzip twin)."""
        return len(self.body) + (len(self.gzip_body) if self.gzip_body else 0)


class ResponseCache:
    """A thread-safe LRU of pre-rendered responses keyed by route.

    ``max_entries`` bounds the LRU (least-recently-*used* entry evicted
    first); ``generation`` counts explicit invalidations and is hashed
    into every ETag, so a refresh changes validators even for re-rendered
    identical bodies — clients holding pre-refresh ETags re-download once.
    """

    def __init__(self, fingerprint: str, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._generation = 0
        # Last-Modified is genuinely wall-clock: it stamps when this cache
        # generation was built, which is exactly what HTTP revalidation wants.
        self._built_at = time.time()  # crowdlint: disable=CW202 -- HTTP Last-Modified stamps real build time by design

    # ------------------------------------------------------------------ keys

    def key(self, *parts: object) -> CacheKey:
        """A cache key for route parts, always fingerprint-prefixed."""
        return (self.fingerprint,) + tuple(str(p) for p in parts)

    # --------------------------------------------------------------- queries

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def last_modified(self) -> str:
        """The HTTP-date ``Last-Modified`` value of the current generation."""
        with self._lock:
            built_at = self._built_at
        return formatdate(built_at, usegmt=True)

    def lookup(self, key: CacheKey) -> Optional[CacheEntry]:
        """The entry for ``key`` (refreshing its LRU slot), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        observer = get_observer()
        if entry is None:
            observer.inc("repro_web_cache_misses_total")
        else:
            observer.inc("repro_web_cache_hits_total")
        return entry

    # --------------------------------------------------------------- stores

    def store(self, key: CacheKey, body: bytes, content_type: str) -> CacheEntry:
        """Build and insert an entry for ``key``; returns the entry.

        Hashing and gzip run outside the lock.  If the cache is invalidated
        while the entry is being built, the stale entry is still *returned*
        (the response it answers is correct for the data it rendered) but
        never stored.
        """
        with self._lock:
            generation = self._generation
            built_at = self._built_at
        entry = self._build_entry(key, body, content_type, generation, built_at)
        evicted = 0
        with self._lock:
            if generation == self._generation:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    evicted += 1
                n_entries = len(self._entries)
            else:
                n_entries = len(self._entries)
        observer = get_observer()
        if evicted:
            observer.inc("repro_web_cache_evictions_total", evicted)
        observer.set_gauge("repro_web_cache_entries_size", n_entries)
        return entry

    def _build_entry(
        self,
        key: CacheKey,
        body: bytes,
        content_type: str,
        generation: int,
        built_at: float,
    ) -> CacheEntry:
        etag_src = "|".join(key) + f"|g{generation}"
        etag = '"' + hashlib.sha256(etag_src.encode("utf-8")).hexdigest()[:24] + '"'
        gzip_body: Optional[bytes] = None
        if len(body) >= MIN_GZIP_BYTES:
            # mtime=0 keeps the compressed bytes deterministic per body.
            candidate = gzip.compress(body, compresslevel=6, mtime=0)
            if len(candidate) < len(body):
                gzip_body = candidate
        return CacheEntry(
            body=body,
            content_type=content_type,
            etag=etag,
            last_modified=formatdate(built_at, usegmt=True),
            gzip_body=gzip_body,
            generation=generation,
        )

    # ---------------------------------------------------------- invalidation

    def invalidate(self) -> int:
        """Drop every entry and start a new generation; returns entries dropped.

        New renders pick up the bumped generation (fresh ETags and a fresh
        ``Last-Modified``), and stores raced from pre-invalidation renders
        are discarded by the generation check in :meth:`store`.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._generation += 1
            # Same intentional wall-clock read as the constructor's.
            self._built_at = time.time()  # crowdlint: disable=CW202 -- HTTP Last-Modified stamps real refresh time by design
        observer = get_observer()
        observer.inc("repro_web_cache_invalidations_total")
        observer.set_gauge("repro_web_cache_entries_size", 0)
        return dropped

    # -------------------------------------------------------------- insight

    def info(self) -> dict:
        """JSON-ready cache state (served by ``/api/cache``)."""
        with self._lock:
            n_entries = len(self._entries)
            n_bytes = sum(e.n_bytes for e in self._entries.values())
            generation = self._generation
        return {
            "fingerprint": self.fingerprint,
            "entries": n_entries,
            "payload_bytes": n_bytes,
            "max_entries": self.max_entries,
            "generation": generation,
            "last_modified": self.last_modified,
        }
