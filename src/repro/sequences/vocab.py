"""Dense integer interning for sequence items (the hot-path vocabulary).

The mining and crowd layers traffic in small immutable values —
``TimedItem(bin, label)`` pairs, microcell addresses, place labels — that
are hashed and compared millions of times per run.  An :class:`ItemVocab`
interns every distinct value to a *dense contiguous integer id* once, at
database-build time, so the inner loops can operate on plain ints (and int
arrays / int bitmasks) instead of tuples and strings.

Design invariants
-----------------
* **Stable construction.**  Ids are assigned in a deterministic sorted
  order: timed items (anything exposing ``label``/``bin``) sort by
  ``(label, bin)`` — exactly :func:`repro.mining.base.candidate_sort_key` —
  so sorting ids reproduces the miners' canonical candidate order for free;
  other item types sort naturally, with ``repr`` as the tie-safe fallback
  for heterogeneous alphabets.  Building the same vocabulary from the same
  distinct items always yields the same ids.
* **Decode at the boundary.**  ``decode`` returns the *shared* stored item
  instance, so decoding is a list index and decoded structures share one
  object per distinct value instead of one per occurrence.
* **Compact storage.**  ``encode_sequence`` packs a sequence into an
  ``array('i')`` — 4 bytes per occurrence versus a pointer plus a boxed
  item object for the tuple-of-objects representation.
"""

from __future__ import annotations

from array import array
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Sequence, Tuple, TypeVar

__all__ = ["ItemVocab", "vocab_sort_key"]

Item = TypeVar("Item", bound=Hashable)

#: Typecode used for encoded sequences; a signed 32-bit int comfortably
#: holds any realistic vocabulary (ids are dense, so |vocab| bounds them).
ENCODED_TYPECODE = "i"


def vocab_sort_key(item):
    """Deterministic id-assignment order (mirrors ``candidate_sort_key``).

    Timed items order by ``(label, bin)``; everything else keeps its
    natural order.  Kept local so ``sequences`` does not import ``mining``
    (the layering DAG points the other way).
    """
    label = getattr(item, "label", None)
    bin_index = getattr(item, "bin", None)
    if label is not None and bin_index is not None:
        return (label, bin_index)
    return item


def _stable_sorted(items: Iterable) -> List:
    items = list(items)
    try:
        return sorted(items, key=vocab_sort_key)
    except TypeError:
        return sorted(items, key=repr)


def _rebuild(items: Tuple) -> "ItemVocab":
    """Pickle reconstructor: rebuild from the already-sorted item table."""
    vocab = ItemVocab.__new__(ItemVocab)
    vocab._items = items
    vocab._ids = {item: i for i, item in enumerate(items)}
    return vocab


class ItemVocab(Generic[Item]):
    """An immutable bidirectional map ``item ↔ dense contiguous int id``."""

    __slots__ = ("_items", "_ids")

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._items: Tuple[Item, ...] = tuple(_stable_sorted(set(items)))
        self._ids: Dict[Item, int] = {item: i for i, item in enumerate(self._items)}

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemVocab):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return f"ItemVocab({len(self._items)} items)"

    def __reduce__(self):
        # Reconstruct from the item table alone: the id dict is derived, so
        # pickles stay small and rebuilds are exact (no re-sort involved).
        return (_rebuild, (self._items,))

    # ------------------------------------------------------------------ api

    @property
    def items(self) -> Tuple[Item, ...]:
        """All items, in id order (``items[i]`` is the item with id ``i``)."""
        return self._items

    def encode(self, item: Item) -> int:
        """The id of a known item; unknown items raise ``KeyError``."""
        try:
            return self._ids[item]
        except KeyError:
            raise KeyError(f"item {item!r} is not in this vocabulary") from None

    def get(self, item: Item, default: int = -1) -> int:
        """The id of ``item``, or ``default`` when it is unknown."""
        return self._ids.get(item, default)

    def decode(self, item_id: int) -> Item:
        """The (shared) item instance for an id; out-of-range raises."""
        if not 0 <= item_id < len(self._items):
            raise IndexError(
                f"id {item_id} out of range for a {len(self._items)}-item vocabulary"
            )
        return self._items[item_id]

    def encode_sequence(self, sequence: Sequence[Item]) -> array:
        """Pack a sequence of known items into an ``array('i')`` of ids."""
        ids = self._ids
        return array(ENCODED_TYPECODE, [ids[item] for item in sequence])

    def decode_sequence(self, encoded: Sequence[int]) -> Tuple[Item, ...]:
        """Unpack an id array back into a tuple of shared item instances."""
        items = self._items
        return tuple(items[i] for i in encoded)
