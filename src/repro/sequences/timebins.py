"""Time-of-day binning for pattern items and crowd windows.

CrowdWeb annotates every visit with a coarse time-of-day bin ("9–10 am") and
aligns crowds on those bins.  ``TimeBinning`` maps local hours to bin
indexes; bins are half-open ``[start, end)`` and tile the 24-hour day.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterator, List, Tuple

__all__ = ["TimeBinning", "HOURLY", "TWO_HOURLY", "FOUR_HOURLY"]


@dataclass(frozen=True)
class TimeBinning:
    """Partition the day into equal bins of ``width_hours``.

    ``width_hours`` must divide 24 evenly so bins tile the day exactly.
    """

    width_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.width_hours <= 0:
            raise ValueError("bin width must be positive")
        n = 24.0 / self.width_hours
        if abs(n - round(n)) > 1e-9:
            raise ValueError(f"bin width {self.width_hours} must divide 24 evenly")

    @property
    def n_bins(self) -> int:
        return round(24.0 / self.width_hours)

    def bin_of_hour(self, hour: float) -> int:
        """Bin index of a local hour in [0, 24)."""
        if not (0.0 <= hour < 24.0):
            raise ValueError(f"hour {hour} out of range [0, 24)")
        return min(int(hour / self.width_hours), self.n_bins - 1)

    def bin_of(self, local_time: datetime) -> int:
        """Bin index of a datetime's local time-of-day."""
        hour = local_time.hour + local_time.minute / 60.0 + local_time.second / 3600.0
        return self.bin_of_hour(hour)

    def bounds(self, bin_index: int) -> Tuple[float, float]:
        """(start_hour, end_hour) of a bin."""
        if not (0 <= bin_index < self.n_bins):
            raise ValueError(f"bin index {bin_index} out of range [0, {self.n_bins})")
        return bin_index * self.width_hours, (bin_index + 1) * self.width_hours

    def label(self, bin_index: int) -> str:
        """Human label like ``"09:00-10:00"``."""
        start, end = self.bounds(bin_index)
        return f"{self._fmt(start)}-{self._fmt(end)}"

    @staticmethod
    def _fmt(hour: float) -> str:
        h = int(hour)
        m = int(round((hour - h) * 60))
        if m == 60:
            h, m = h + 1, 0
        return f"{h:02d}:{m:02d}"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_bins))

    def all_labels(self) -> List[str]:
        return [self.label(i) for i in self]

    def distance(self, a: int, b: int) -> int:
        """Circular distance between two bins (23:00 is next to 00:00)."""
        d = abs(a - b)
        return min(d, self.n_bins - d)


#: The paper's crowd views step in one-hour windows ("9–10 am").
HOURLY = TimeBinning(1.0)
#: Coarser binnings used by the time-bin-width ablation.
TWO_HOURLY = TimeBinning(2.0)
FOUR_HOURLY = TimeBinning(4.0)
