"""The sequence database handed to the miners.

A :class:`SequenceDatabase` is an ordered collection of item sequences — for
CrowdWeb, one sequence per user-day.  Support here always means *relative*
support: the fraction of sequences containing a pattern as a (not
necessarily contiguous) subsequence, matching the paper's
``min_support ∈ {0.25, 0.5, 0.75}`` sweeps.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..data.records import CheckInDataset
from ..taxonomy import AbstractionLevel, CategoryTree
from .items import Labeler, TimedItem, make_labeler
from .sessions import DailySession, sessionize_dataset, sessionize_user
from .timebins import HOURLY, TimeBinning

__all__ = [
    "SequenceDatabase",
    "is_subsequence",
    "build_user_database",
    "build_all_databases",
]

Item = TypeVar("Item", bound=Hashable)


def is_subsequence(pattern: Sequence, sequence: Sequence) -> bool:
    """True when ``pattern`` occurs in ``sequence`` preserving order
    (gaps allowed).  The empty pattern occurs in every sequence."""
    it = iter(sequence)
    return all(any(item == candidate for candidate in it) for item in pattern)


class SequenceDatabase(Generic[Item]):
    """An immutable list of sequences with support queries."""

    def __init__(self, sequences: Iterable[Sequence[Item]], name: str = "seqdb") -> None:
        self.name = name
        self._sequences: Tuple[Tuple[Item, ...], ...] = tuple(
            tuple(seq) for seq in sequences
        )

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[Tuple[Item, ...]]:
        return iter(self._sequences)

    def __getitem__(self, i: int) -> Tuple[Item, ...]:
        return self._sequences[i]

    @property
    def sequences(self) -> Tuple[Tuple[Item, ...], ...]:
        return self._sequences

    # -------------------------------------------------------------- queries

    def support_count(self, pattern: Sequence[Item]) -> int:
        """Number of sequences containing ``pattern`` as a subsequence."""
        return sum(1 for seq in self._sequences if is_subsequence(pattern, seq))

    def support(self, pattern: Sequence[Item]) -> float:
        """Relative support in [0, 1]; 0 for an empty database."""
        if not self._sequences:
            return 0.0
        return self.support_count(pattern) / len(self._sequences)

    def item_frequencies(self) -> Dict[Item, int]:
        """Per-item sequence frequency (each sequence counts an item once)."""
        freq: Dict[Item, int] = {}
        for seq in self._sequences:
            for item in set(seq):
                freq[item] = freq.get(item, 0) + 1
        return freq

    def alphabet(self) -> List[Item]:
        """All distinct items, in deterministic sorted order."""
        return sorted({item for seq in self._sequences for item in seq})

    def total_items(self) -> int:
        return sum(len(seq) for seq in self._sequences)

    def avg_sequence_length(self) -> float:
        if not self._sequences:
            return 0.0
        return self.total_items() / len(self._sequences)

    def min_count(self, min_support: float) -> int:
        """Absolute sequence count a pattern needs to reach ``min_support``.

        A pattern is frequent when ``count >= ceil(min_support * n)`` with a
        floor of one sequence.
        """
        if not (0.0 < min_support <= 1.0):
            raise ValueError("min_support must be in (0, 1]")
        import math

        return max(1, math.ceil(min_support * len(self._sequences)))

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase({self.name!r}: {len(self._sequences)} sequences, "
            f"{self.total_items()} items)"
        )


def build_user_database(
    dataset: CheckInDataset,
    user_id: str,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    min_items: int = 1,
    day_kind: str = "all",
) -> SequenceDatabase[TimedItem]:
    """One user's day-per-sequence database at an abstraction level."""
    labeler = make_labeler(taxonomy, level)
    sessions = sessionize_user(dataset, user_id, labeler, binning,
                               min_items=min_items, day_kind=day_kind)
    return SequenceDatabase(
        (s.items for s in sessions), name=f"{dataset.name}/{user_id}/{level.value}"
    )


def build_all_databases(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    min_items: int = 1,
    day_kind: str = "all",
) -> Dict[str, SequenceDatabase[TimedItem]]:
    """Per-user sequence databases for every user in the dataset."""
    labeler = make_labeler(taxonomy, level)
    sessions_by_user = sessionize_dataset(dataset, labeler, binning,
                                          min_items=min_items, day_kind=day_kind)
    return {
        uid: SequenceDatabase(
            (s.items for s in sessions), name=f"{dataset.name}/{uid}/{level.value}"
        )
        for uid, sessions in sessions_by_user.items()
    }
