"""The sequence database handed to the miners.

A :class:`SequenceDatabase` is an ordered collection of item sequences — for
CrowdWeb, one sequence per user-day.  Support here always means *relative*
support: the fraction of sequences containing a pattern as a (not
necessarily contiguous) subsequence, matching the paper's
``min_support ∈ {0.25, 0.5, 0.75}`` sweeps.

Interned representation
-----------------------
Internally the database does **not** store item objects.  At build time
every distinct item is interned to a dense integer id through an
:class:`~repro.sequences.vocab.ItemVocab` and all sequences are packed into
one flat ``array('i')`` of ids plus an offsets array (CSR-style): 4 bytes
per occurrence and 4 bytes per sequence boundary, instead of a tuple, a
pointer, and a boxed :class:`TimedItem` per occurrence.  User-day sequences
are short (often one or two items), so the flat layout matters — one
``array`` object *per sequence* would spend more on array headers than on
ids.

The object API (``db[i]``, iteration, ``db.sequences``) is preserved by
decoding on demand (decoded tuples share one item instance per distinct
value, via the vocabulary), so downstream formatting/serving code is
untouched; the miners bypass decoding entirely and consume ``db.encoded`` /
``db.vocab`` directly.
"""

from __future__ import annotations

from array import array
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..data.records import CheckInDataset
from ..taxonomy import AbstractionLevel, CategoryTree
from .items import Labeler, TimedItem, make_labeler
from .sessions import DailySession, sessionize_dataset, sessionize_user
from .timebins import HOURLY, TimeBinning
from .vocab import ENCODED_TYPECODE, ItemVocab

__all__ = [
    "SequenceDatabase",
    "is_subsequence",
    "build_user_database",
    "build_all_databases",
]

Item = TypeVar("Item", bound=Hashable)


def is_subsequence(pattern: Sequence, sequence: Sequence) -> bool:
    """True when ``pattern`` occurs in ``sequence`` preserving order
    (gaps allowed).  The empty pattern occurs in every sequence."""
    it = iter(sequence)
    return all(any(item == candidate for candidate in it) for item in pattern)


class SequenceDatabase(Generic[Item]):
    """An immutable list of sequences with support queries.

    ``vocab`` lets many databases share one interning table (the per-user
    databases of a dataset share the dataset-wide vocabulary, so shipping
    them to worker processes moves the vocabulary once, not per user); when
    omitted, a private vocabulary is built from the sequences themselves.
    """

    # __weakref__ lets derived-structure caches (e.g. the mining layer's
    # per-database match index) key weakly on the database itself.
    __slots__ = ("name", "_vocab", "_flat", "_offsets", "_decoded", "__weakref__")

    def __init__(
        self,
        sequences: Iterable[Sequence[Item]],
        name: str = "seqdb",
        vocab: Optional[ItemVocab[Item]] = None,
    ) -> None:
        self.name = name
        if isinstance(sequences, tuple) and all(
            type(seq) is tuple for seq in sequences
        ):
            decoded = sequences  # already canonical: skip the deep re-copy
        else:
            decoded = tuple(tuple(seq) for seq in sequences)
        if vocab is None:
            vocab = ItemVocab(item for seq in decoded for item in seq)
        self._vocab: ItemVocab[Item] = vocab
        flat = array(ENCODED_TYPECODE)
        offsets = array(ENCODED_TYPECODE, [0])
        for seq in decoded:
            flat.extend(vocab.encode_sequence(seq))
            offsets.append(len(flat))
        self._flat: array = flat
        self._offsets: array = offsets
        # Decoded tuples are rebuilt lazily (and share the vocabulary's item
        # instances); the build-time input objects are not retained.
        self._decoded: Optional[Tuple[Tuple[Item, ...], ...]] = None

    @classmethod
    def from_storage(
        cls,
        flat: array,
        offsets: array,
        vocab: ItemVocab[Item],
        name: str = "seqdb",
    ) -> "SequenceDatabase[Item]":
        """Adopt packed storage (flat ids + offsets) without any copy.

        This is the worker-process entry point: the execution layer ships
        the shared vocabulary once per worker and the two compact id arrays
        per task, and rebuilds the database here.
        """
        db = cls.__new__(cls)
        db.name = name
        db._vocab = vocab
        db._flat = flat
        db._offsets = offsets
        db._decoded = None
        return db

    @classmethod
    def from_encoded(
        cls,
        encoded: Iterable[Sequence[int]],
        vocab: ItemVocab[Item],
        name: str = "seqdb",
    ) -> "SequenceDatabase[Item]":
        """Build from per-sequence id arrays (packed into flat storage)."""
        flat = array(ENCODED_TYPECODE)
        offsets = array(ENCODED_TYPECODE, [0])
        for arr in encoded:
            flat.extend(arr)
            offsets.append(len(flat))
        return cls.from_storage(flat, offsets, vocab, name=name)

    # --------------------------------------------------------------- pickle

    def __getstate__(self):
        # The decoded cache is derived state: drop it so pickles stay small.
        return (self.name, self._vocab, self._flat, self._offsets)

    def __setstate__(self, state) -> None:
        self.name, self._vocab, self._flat, self._offsets = state
        self._decoded = None

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __iter__(self) -> Iterator[Tuple[Item, ...]]:
        return iter(self.sequences)

    def __getitem__(self, i: int) -> Tuple[Item, ...]:
        return self.sequences[i]

    @property
    def sequences(self) -> Tuple[Tuple[Item, ...], ...]:
        """The object view, decoded on demand and cached."""
        decoded = self._decoded
        if decoded is None:
            decode = self._vocab.decode_sequence
            flat, offsets = self._flat, self._offsets
            decoded = self._decoded = tuple(
                decode(flat[offsets[i]:offsets[i + 1]])
                for i in range(len(offsets) - 1)
            )
        return decoded

    # ----------------------------------------------------- interned surface

    @property
    def vocab(self) -> ItemVocab[Item]:
        """The interning table mapping items ↔ dense int ids."""
        return self._vocab

    @property
    def storage(self) -> Tuple[array, array]:
        """The packed representation: (flat id array, offsets array).

        Sequence ``i`` is ``flat[offsets[i]:offsets[i+1]]``.  This is the
        structure that actually lives in memory and travels in pickles.
        """
        return self._flat, self._offsets

    @property
    def encoded(self) -> Tuple[array, ...]:
        """Per-sequence id arrays, materialized on demand (not cached —
        the stored representation is :attr:`storage`)."""
        flat, offsets = self._flat, self._offsets
        return tuple(
            flat[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        )

    # -------------------------------------------------------------- queries

    def support_count(self, pattern: Sequence[Item]) -> int:
        """Number of sequences containing ``pattern`` as a subsequence."""
        return sum(1 for seq in self.sequences if is_subsequence(pattern, seq))

    def support(self, pattern: Sequence[Item]) -> float:
        """Relative support in [0, 1]; 0 for an empty database."""
        n = len(self)
        if not n:
            return 0.0
        return self.support_count(pattern) / n

    def item_frequencies(self) -> Dict[Item, int]:
        """Per-item sequence frequency (each sequence counts an item once)."""
        decode = self._vocab.decode
        flat, offsets = self._flat, self._offsets
        freq_ids: Dict[int, int] = {}
        for i in range(len(offsets) - 1):
            for item_id in set(flat[offsets[i]:offsets[i + 1]]):
                freq_ids[item_id] = freq_ids.get(item_id, 0) + 1
        return {decode(item_id): count for item_id, count in freq_ids.items()}

    def alphabet(self) -> List[Item]:
        """All distinct items, in deterministic sorted order."""
        decode = self._vocab.decode
        return sorted(decode(item_id) for item_id in set(self._flat))

    def total_items(self) -> int:
        return len(self._flat)

    def avg_sequence_length(self) -> float:
        n = len(self)
        if not n:
            return 0.0
        return len(self._flat) / n

    def min_count(self, min_support: float) -> int:
        """Absolute sequence count a pattern needs to reach ``min_support``.

        A pattern is frequent when ``count >= ceil(min_support * n)`` with a
        floor of one sequence.
        """
        if not (0.0 < min_support <= 1.0):
            raise ValueError("min_support must be in (0, 1]")
        import math

        return max(1, math.ceil(min_support * len(self)))

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase({self.name!r}: {len(self)} sequences, "
            f"{self.total_items()} items)"
        )


def build_user_database(
    dataset: CheckInDataset,
    user_id: str,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    min_items: int = 1,
    day_kind: str = "all",
) -> SequenceDatabase[TimedItem]:
    """One user's day-per-sequence database at an abstraction level."""
    labeler = make_labeler(taxonomy, level)
    sessions = sessionize_user(dataset, user_id, labeler, binning,
                               min_items=min_items, day_kind=day_kind)
    return SequenceDatabase(
        (s.items for s in sessions), name=f"{dataset.name}/{user_id}/{level.value}"
    )


def build_all_databases(
    dataset: CheckInDataset,
    taxonomy: CategoryTree,
    level: AbstractionLevel = AbstractionLevel.ROOT,
    binning: TimeBinning = HOURLY,
    min_items: int = 1,
    day_kind: str = "all",
) -> Dict[str, SequenceDatabase[TimedItem]]:
    """Per-user sequence databases for every user in the dataset.

    All databases share one dataset-wide :class:`ItemVocab` (built once from
    every user's sessions, in stable sorted order), so cross-user structures
    — and worker processes — can traffic in one id space.
    """
    labeler = make_labeler(taxonomy, level)
    sessions_by_user = sessionize_dataset(dataset, labeler, binning,
                                          min_items=min_items, day_kind=day_kind)
    vocab: ItemVocab[TimedItem] = ItemVocab(
        item
        for sessions in sessions_by_user.values()
        for s in sessions
        for item in s.items
    )
    return {
        uid: SequenceDatabase(
            tuple(s.items for s in sessions),
            name=f"{dataset.name}/{uid}/{level.value}",
            vocab=vocab,
        )
        for uid, sessions in sessions_by_user.items()
    }
