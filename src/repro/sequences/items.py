"""Sequence items: (time-bin, place-label) pairs, and venue→label mappers.

An *item* is what the miner sees: the paper abstracts each check-in to a
labeled place at a time bin, so "Thai Express at 12:41" becomes
``TimedItem(bin=12, label="Thai Restaurant")`` (or ``"Eatery"`` at root
abstraction).
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from ..data.records import CheckIn
from ..taxonomy import AbstractionLevel, CategoryTree, UnknownCategoryError
from .timebins import TimeBinning

__all__ = ["TimedItem", "Labeler", "make_labeler", "item_formatter"]


class TimedItem(NamedTuple):
    """One mined item: a place label pinned to a time-of-day bin."""

    bin: int
    label: str

    def format(self, binning: TimeBinning) -> str:
        return f"{binning.label(self.bin)} {self.label}"


#: Maps a check-in to the place label mining will use.
Labeler = Callable[[CheckIn], str]


def make_labeler(taxonomy: CategoryTree, level: AbstractionLevel) -> Labeler:
    """Build the venue→label function for an abstraction level.

    * ``VENUE`` — the raw venue id (no abstraction; the strawman).
    * ``LEAF`` — the venue's category name as recorded.
    * ``ROOT`` — the top-level ancestor in the taxonomy.  Categories missing
      from the taxonomy fall back to their recorded name, so real-world data
      with unknown categories degrades gracefully instead of crashing.
    """
    if level is AbstractionLevel.VENUE:
        return lambda checkin: checkin.venue_id
    if level is AbstractionLevel.LEAF:
        return lambda checkin: checkin.category_name

    def root_labeler(checkin: CheckIn) -> str:
        try:
            return taxonomy.root_of(taxonomy.resolve(checkin.category_id or checkin.category_name).category_id).name
        except UnknownCategoryError:
            return checkin.category_name

    return root_labeler


def item_formatter(binning: TimeBinning) -> Callable[[TimedItem], str]:
    """A display function for items under a given binning."""
    return lambda item: item.format(binning)
