"""Sequence construction: binning, sessionization, stay points, databases."""

from .database import (
    SequenceDatabase,
    build_all_databases,
    build_user_database,
    is_subsequence,
)
from .items import Labeler, TimedItem, item_formatter, make_labeler
from .sessions import DailySession, sessionize_dataset, sessionize_user
from .staypoints import Fix, StayPoint, detect_stay_points
from .timebins import FOUR_HOURLY, HOURLY, TWO_HOURLY, TimeBinning
from .vocab import ItemVocab

__all__ = [
    "DailySession",
    "FOUR_HOURLY",
    "Fix",
    "HOURLY",
    "ItemVocab",
    "Labeler",
    "SequenceDatabase",
    "StayPoint",
    "TWO_HOURLY",
    "TimeBinning",
    "TimedItem",
    "build_all_databases",
    "build_user_database",
    "detect_stay_points",
    "is_subsequence",
    "item_formatter",
    "make_labeler",
    "sessionize_dataset",
    "sessionize_user",
]
