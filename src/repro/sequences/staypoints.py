"""Stay-point detection for raw GPS-style traces (Li et al., 2008).

Check-in data is already venue-anchored, but the DBSCAN+RNN prediction
baseline (paper ref [10]) and any future GPS ingestion need the classic
stay-point extraction: a stay point is the centroid of a maximal run of
fixes that stays within ``distance_threshold_m`` of its first fix for at
least ``time_threshold_s`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Sequence

from ..data.records import Fix
from ..geo import GeoPoint, centroid, haversine_m

__all__ = ["Fix", "StayPoint", "detect_stay_points"]


@dataclass(frozen=True)
class StayPoint:
    """A dwell: where the user lingered, and for how long."""

    location: GeoPoint
    arrival: datetime
    departure: datetime
    n_fixes: int

    @property
    def duration_s(self) -> float:
        return (self.departure - self.arrival).total_seconds()


def detect_stay_points(
    fixes: Sequence[Fix],
    distance_threshold_m: float = 200.0,
    time_threshold_s: float = 20 * 60.0,
) -> List[StayPoint]:
    """Extract stay points from a chronologically sorted trace.

    The classic two-pointer sweep: anchor at fix ``i``, extend ``j`` while
    every fix stays within the distance threshold of the anchor; if the
    dwell time ``t_j - t_i`` exceeds the time threshold, emit the centroid.
    """
    if distance_threshold_m <= 0 or time_threshold_s <= 0:
        raise ValueError("thresholds must be positive")
    ordered = list(fixes)
    if any(ordered[i].timestamp > ordered[i + 1].timestamp for i in range(len(ordered) - 1)):
        raise ValueError("fixes must be sorted by timestamp")

    stay_points: List[StayPoint] = []
    n = len(ordered)
    i = 0
    while i < n:
        anchor = ordered[i]
        j = i + 1
        while j < n and haversine_m(anchor.lat, anchor.lon, ordered[j].lat, ordered[j].lon) <= distance_threshold_m:
            j += 1
        # Fixes i .. j-1 are within range of the anchor.
        last = ordered[j - 1]
        dwell = (last.timestamp - anchor.timestamp).total_seconds()
        if dwell >= time_threshold_s:
            cluster = ordered[i:j]
            stay_points.append(
                StayPoint(
                    location=centroid(f.point for f in cluster),
                    arrival=anchor.timestamp,
                    departure=last.timestamp,
                    n_fixes=len(cluster),
                )
            )
            i = j
        else:
            i += 1
    return stay_points
