"""Sessionization: a user's check-in stream → one visit sequence per day.

The mining unit of the paper is the *daily sequence*: the ordered places a
user visited on one local calendar day.  Support of a pattern is then the
fraction of days on which it occurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Sequence, Tuple

from ..data.records import CheckIn, CheckInDataset
from .items import Labeler, TimedItem
from .timebins import HOURLY, TimeBinning

# crowdlint: disable-file=CW604 -- DAY_KINDS is the documented set of valid
# day_kind arguments; it is exported for downstream callers even though the
# repo itself only consumes it through the validation error paths.
__all__ = ["DailySession", "sessionize_user", "sessionize_dataset", "DAY_KINDS"]

#: Day-type filters: all days, Monday–Friday, or Saturday/Sunday.
DAY_KINDS = ("all", "weekday", "weekend")


def _day_admitted(day: date, day_kind: str) -> bool:
    if day_kind == "all":
        return True
    if day_kind == "weekday":
        return day.weekday() < 5
    if day_kind == "weekend":
        return day.weekday() >= 5
    raise ValueError(f"unknown day kind {day_kind!r} (expected one of {DAY_KINDS})")


@dataclass(frozen=True)
class DailySession:
    """One user-day: the check-ins and the item sequence they map to."""

    user_id: str
    day: date
    checkins: Tuple[CheckIn, ...]
    items: Tuple[TimedItem, ...]

    def __len__(self) -> int:
        return len(self.items)


def _to_items(
    checkins: Sequence[CheckIn],
    labeler: Labeler,
    binning: TimeBinning,
    dedupe_consecutive: bool,
) -> Tuple[TimedItem, ...]:
    items: List[TimedItem] = []
    for c in checkins:
        item = TimedItem(bin=binning.bin_of(c.local_time), label=labeler(c))
        if dedupe_consecutive and items and items[-1] == item:
            continue  # double check-in at the same place/bin adds no signal
        items.append(item)
    return tuple(items)


def sessionize_user(
    dataset: CheckInDataset,
    user_id: str,
    labeler: Labeler,
    binning: TimeBinning = HOURLY,
    dedupe_consecutive: bool = True,
    min_items: int = 1,
    day_kind: str = "all",
) -> List[DailySession]:
    """Split one user's records into daily sessions, in chronological order.

    Days are local calendar days (the dump's timezone offset is honored).
    Sessions with fewer than ``min_items`` items after deduplication are
    dropped — an empty day is not evidence about patterns.  ``day_kind``
    restricts which days count (weekday/weekend routines differ, so mining
    them separately sharpens both).
    """
    if min_items < 1:
        raise ValueError("min_items must be >= 1")
    if day_kind not in DAY_KINDS:
        raise ValueError(f"unknown day kind {day_kind!r} (expected one of {DAY_KINDS})")
    by_day: Dict[date, List[CheckIn]] = {}
    for record in dataset.for_user(user_id):
        by_day.setdefault(record.local_date, []).append(record)
    sessions: List[DailySession] = []
    for day in sorted(by_day):
        if not _day_admitted(day, day_kind):
            continue
        day_records = sorted(by_day[day], key=lambda c: c.timestamp)
        items = _to_items(day_records, labeler, binning, dedupe_consecutive)
        if len(items) >= min_items:
            sessions.append(
                DailySession(user_id=user_id, day=day, checkins=tuple(day_records), items=items)
            )
    return sessions


def sessionize_dataset(
    dataset: CheckInDataset,
    labeler: Labeler,
    binning: TimeBinning = HOURLY,
    dedupe_consecutive: bool = True,
    min_items: int = 1,
    day_kind: str = "all",
) -> Dict[str, List[DailySession]]:
    """Sessionize every user; map user id → daily sessions."""
    return {
        uid: sessionize_user(dataset, uid, labeler, binning, dedupe_consecutive,
                             min_items, day_kind)
        for uid in dataset.user_ids()
    }
