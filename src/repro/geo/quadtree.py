"""A point quadtree for fast spatial queries over venues and check-ins.

Used by the synthetic-city generator (nearest-venue lookups) and the web API
(viewport queries).  Stores arbitrary payloads keyed by location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .bbox import BoundingBox
from .point import GeoPoint

__all__ = ["QuadTree", "QuadTreeEntry"]

T = TypeVar("T")


@dataclass(frozen=True)
class QuadTreeEntry(Generic[T]):
    point: GeoPoint
    payload: T


class _Node(Generic[T]):
    __slots__ = ("bbox", "entries", "children", "capacity", "depth")

    def __init__(self, bbox: BoundingBox, capacity: int, depth: int) -> None:
        self.bbox = bbox
        self.entries: List[QuadTreeEntry[T]] = []
        self.children: Optional[Tuple["_Node[T]", ...]] = None
        self.capacity = capacity
        self.depth = depth

    def insert(self, entry: QuadTreeEntry[T], max_depth: int) -> bool:
        if not self.bbox.contains(entry.point):
            return False
        if self.children is None:
            if len(self.entries) < self.capacity or self.depth >= max_depth:
                self.entries.append(entry)
                return True
            self._split(max_depth)
        assert self.children is not None
        for child in self.children:
            if child.insert(entry, max_depth):
                return True
        # Boundary points can fall between children due to floating error;
        # keep them at this node rather than losing them.
        self.entries.append(entry)
        return True

    def _split(self, max_depth: int) -> None:
        self.children = tuple(
            _Node(q, self.capacity, self.depth + 1) for q in self.bbox.quadrants()
        )
        staying: List[QuadTreeEntry[T]] = []
        for entry in self.entries:
            placed = False
            for child in self.children:
                if child.insert(entry, max_depth):
                    placed = True
                    break
            if not placed:
                staying.append(entry)
        self.entries = staying

    def query_bbox(self, bbox: BoundingBox, out: List[QuadTreeEntry[T]]) -> None:
        if not self.bbox.intersects(bbox):
            return
        for entry in self.entries:
            if bbox.contains(entry.point):
                out.append(entry)
        if self.children is not None:
            for child in self.children:
                child.query_bbox(bbox, out)

    def iter_entries(self) -> Iterator[QuadTreeEntry[T]]:
        yield from self.entries
        if self.children is not None:
            for child in self.children:
                yield from child.iter_entries()


class QuadTree(Generic[T]):
    """A bounded point quadtree.

    Parameters
    ----------
    bbox:
        All inserted points must fall inside this box.
    capacity:
        Max entries per leaf before splitting.
    max_depth:
        Depth cap; beyond it leaves grow unboundedly (protects against
        pathological duplicate-point insertions).
    """

    def __init__(self, bbox: BoundingBox, capacity: int = 16, max_depth: int = 12) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self._root: _Node[T] = _Node(bbox, capacity, 0)
        self._max_depth = max_depth
        self._size = 0

    @property
    def bbox(self) -> BoundingBox:
        return self._root.bbox

    def __len__(self) -> int:
        return self._size

    def insert(self, point: GeoPoint, payload: T) -> None:
        """Insert a payload at a point; raises if the point is outside the tree bbox."""
        entry = QuadTreeEntry(point, payload)
        if not self._root.insert(entry, self._max_depth):
            raise ValueError(f"point {point} outside quadtree bounds {self.bbox}")
        self._size += 1

    def query_bbox(self, bbox: BoundingBox) -> List[QuadTreeEntry[T]]:
        """All entries inside ``bbox`` (inclusive bounds)."""
        out: List[QuadTreeEntry[T]] = []
        self._root.query_bbox(bbox, out)
        return out

    def query_radius(self, center: GeoPoint, radius_m: float) -> List[QuadTreeEntry[T]]:
        """All entries within ``radius_m`` meters of ``center``."""
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        window = BoundingBox.around(center, radius_m)
        clipped = window.intersection(self.bbox)
        if clipped is None:
            return []
        return [
            e for e in self.query_bbox(clipped) if center.distance_to(e.point) <= radius_m
        ]

    def nearest(self, center: GeoPoint, k: int = 1, max_radius_m: float = 50_000.0):
        """The ``k`` entries nearest to ``center`` within ``max_radius_m``.

        Implemented by expanding ring search — simple and fast enough for the
        tree sizes here (tens of thousands of venues).
        Returns a list of ``(distance_m, entry)`` sorted ascending.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        radius = 250.0
        while True:
            hits = self.query_radius(center, min(radius, max_radius_m))
            if len(hits) >= k or radius >= max_radius_m:
                scored = sorted(
                    ((center.distance_to(e.point), e) for e in hits), key=lambda t: t[0]
                )
                return scored[:k]
            radius *= 2.0

    def __iter__(self) -> Iterator[QuadTreeEntry[T]]:
        return self._root.iter_entries()
