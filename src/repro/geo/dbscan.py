"""DBSCAN over geographic points, implemented from scratch.

The paper's related work (ref [10]) clusters GPS fixes with DBSCAN before
feeding an RNN; we implement the same substrate so the prediction baseline in
:mod:`repro.prediction` is self-contained.  Neighborhoods use haversine
distance; the index is a simple cell hash so clustering stays near O(n) for
city-scale data.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .point import GeoPoint, haversine_m

__all__ = ["DBSCANResult", "dbscan", "NOISE"]

#: Cluster label assigned to noise points.
NOISE = -1

_DEG2RAD = math.pi / 180.0
_M_PER_DEG_LAT = 111_320.0


@dataclass(frozen=True)
class DBSCANResult:
    """Labels aligned with the input points; ``NOISE`` (-1) marks outliers."""

    labels: Tuple[int, ...]
    n_clusters: int

    def cluster_members(self) -> Dict[int, List[int]]:
        """Map cluster label → input indexes (noise excluded)."""
        members: Dict[int, List[int]] = defaultdict(list)
        for i, label in enumerate(self.labels):
            if label != NOISE:
                members[label].append(i)
        return dict(members)

    @property
    def n_noise(self) -> int:
        return sum(1 for label in self.labels if label == NOISE)


class _CellHash:
    """Uniform-grid spatial hash in degrees, sized to eps."""

    def __init__(self, points: Sequence[GeoPoint], eps_m: float) -> None:
        self._points = points
        mean_lat = sum(p.lat for p in points) / len(points)
        self._dlat = eps_m / _M_PER_DEG_LAT
        m_per_deg_lon = _M_PER_DEG_LAT * max(math.cos(mean_lat * _DEG2RAD), 1e-6)
        self._dlon = eps_m / m_per_deg_lon
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for i, p in enumerate(points):
            self._cells[self._key(p)].append(i)

    def _key(self, p: GeoPoint) -> Tuple[int, int]:
        return (int(math.floor(p.lat / self._dlat)), int(math.floor(p.lon / self._dlon)))

    def neighbors_within(self, idx: int, eps_m: float) -> List[int]:
        """Indexes within eps of point ``idx`` (including itself)."""
        p = self._points[idx]
        krow, kcol = self._key(p)
        hits: List[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                for j in self._cells.get((krow + dr, kcol + dc), ()):
                    q = self._points[j]
                    if haversine_m(p.lat, p.lon, q.lat, q.lon) <= eps_m:
                        hits.append(j)
        return hits


def dbscan(points: Sequence[GeoPoint], eps_m: float, min_samples: int) -> DBSCANResult:
    """Density-based clustering of geographic points.

    Parameters
    ----------
    points:
        Input fixes.
    eps_m:
        Neighborhood radius in meters.
    min_samples:
        Minimum neighborhood size (including the point itself) for a core point.
    """
    if eps_m <= 0:
        raise ValueError("eps_m must be positive")
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    n = len(points)
    if n == 0:
        return DBSCANResult(labels=(), n_clusters=0)

    index = _CellHash(points, eps_m)
    labels = [None] * n  # type: List[int | None]
    cluster = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        neighborhood = index.neighbors_within(i, eps_m)
        if len(neighborhood) < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        # Expand the cluster with a seed queue (classic DBSCAN).
        queue = [j for j in neighborhood if j != i]
        qi = 0
        while qi < len(queue):
            j = queue[qi]
            qi += 1
            if labels[j] == NOISE:
                labels[j] = cluster  # border point reached from a core
            if labels[j] is not None:
                continue
            labels[j] = cluster
            j_neighborhood = index.neighbors_within(j, eps_m)
            if len(j_neighborhood) >= min_samples:
                queue.extend(k for k in j_neighborhood if labels[k] is None or labels[k] == NOISE)
        cluster += 1

    return DBSCANResult(labels=tuple(label if label is not None else NOISE for label in labels),
                        n_clusters=cluster)
