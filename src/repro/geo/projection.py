"""Map projections used by the renderer and vectorized distance kernels.

The city-scale views in CrowdWeb use a local equirectangular projection:
good enough at ~40 km extents, trivially invertible, and fast to vectorize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .bbox import BoundingBox
from .point import EARTH_RADIUS_M, GeoPoint

__all__ = [
    "EquirectangularProjection",
    "ScreenProjection",
    "haversine_matrix_m",
    "pairwise_haversine_m",
]

_DEG2RAD = math.pi / 180.0


@dataclass(frozen=True)
class EquirectangularProjection:
    """Project lat/lon onto a local tangent plane in meters.

    The projection is centered on ``origin``; x grows east, y grows north.
    """

    origin: GeoPoint

    def forward(self, lat: float, lon: float) -> Tuple[float, float]:
        """(lat, lon) → (x_m, y_m) relative to the origin."""
        cos_phi0 = math.cos(self.origin.lat * _DEG2RAD)
        x = (lon - self.origin.lon) * _DEG2RAD * cos_phi0 * EARTH_RADIUS_M
        y = (lat - self.origin.lat) * _DEG2RAD * EARTH_RADIUS_M
        return x, y

    def inverse(self, x_m: float, y_m: float) -> Tuple[float, float]:
        """(x_m, y_m) → (lat, lon)."""
        cos_phi0 = math.cos(self.origin.lat * _DEG2RAD)
        lat = self.origin.lat + (y_m / EARTH_RADIUS_M) / _DEG2RAD
        lon = self.origin.lon + (x_m / (EARTH_RADIUS_M * cos_phi0)) / _DEG2RAD
        return lat, lon

    def forward_arrays(self, lats: np.ndarray, lons: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`forward` for numpy arrays."""
        cos_phi0 = math.cos(self.origin.lat * _DEG2RAD)
        x = (np.asarray(lons, dtype=float) - self.origin.lon) * _DEG2RAD * cos_phi0 * EARTH_RADIUS_M
        y = (np.asarray(lats, dtype=float) - self.origin.lat) * _DEG2RAD * EARTH_RADIUS_M
        return x, y


@dataclass(frozen=True)
class ScreenProjection:
    """Map a :class:`BoundingBox` onto a pixel viewport.

    Latitude increases northward but pixel y grows downward, so y is flipped.
    The aspect ratio is *not* preserved automatically; callers that want
    square meters should size the viewport from ``bbox.width_m/height_m``.
    """

    bbox: BoundingBox
    width_px: float
    height_px: float
    padding_px: float = 0.0

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise ValueError("viewport dimensions must be positive")
        if self.padding_px < 0 or 2 * self.padding_px >= min(self.width_px, self.height_px):
            raise ValueError("padding must be non-negative and smaller than half the viewport")

    def to_screen(self, lat: float, lon: float) -> Tuple[float, float]:
        """(lat, lon) → (x_px, y_px); points outside the bbox land outside the viewport."""
        inner_w = self.width_px - 2 * self.padding_px
        inner_h = self.height_px - 2 * self.padding_px
        lon_span = self.bbox.lon_span or 1e-12
        lat_span = self.bbox.lat_span or 1e-12
        fx = (lon - self.bbox.min_lon) / lon_span
        fy = (lat - self.bbox.min_lat) / lat_span
        return self.padding_px + fx * inner_w, self.padding_px + (1.0 - fy) * inner_h

    def to_geo(self, x_px: float, y_px: float) -> Tuple[float, float]:
        """(x_px, y_px) → (lat, lon); inverse of :meth:`to_screen`."""
        inner_w = self.width_px - 2 * self.padding_px
        inner_h = self.height_px - 2 * self.padding_px
        fx = (x_px - self.padding_px) / (inner_w or 1e-12)
        fy = 1.0 - (y_px - self.padding_px) / (inner_h or 1e-12)
        lat = self.bbox.min_lat + fy * self.bbox.lat_span
        lon = self.bbox.min_lon + fx * self.bbox.lon_span
        return lat, lon


def haversine_matrix_m(
    lats1: np.ndarray, lons1: np.ndarray, lats2: np.ndarray, lons2: np.ndarray
) -> np.ndarray:
    """Full (n, m) haversine distance matrix in meters between two point sets."""
    phi1 = np.asarray(lats1, dtype=float)[:, None] * _DEG2RAD
    phi2 = np.asarray(lats2, dtype=float)[None, :] * _DEG2RAD
    dphi = phi2 - phi1
    dlam = (np.asarray(lons2, dtype=float)[None, :] - np.asarray(lons1, dtype=float)[:, None]) * _DEG2RAD
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(a))


def pairwise_haversine_m(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Symmetric (n, n) haversine distance matrix of one point set."""
    return haversine_matrix_m(lats, lons, lats, lons)
