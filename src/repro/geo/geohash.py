"""Geohash encoding/decoding (base-32, standard Gustavo Niemeyer scheme).

Geohashes give CrowdWeb a resolution-tunable, prefix-mergeable cell id — an
alternative microcell addressing scheme to the regular grid, and the natural
key for deduplicating venues scraped at slightly different coordinates.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "encode",
    "decode",
    "decode_bbox",
    "neighbors",
    "expand",
    "precision_for_cell_size_m",
]

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(_BASE32)}

# Approximate max cell edge (meters) per geohash precision, at the equator.
_CELL_SIZE_M = {
    1: 5_000_000.0,
    2: 1_250_000.0,
    3: 156_000.0,
    4: 39_100.0,
    5: 4_890.0,
    6: 1_220.0,
    7: 153.0,
    8: 38.2,
    9: 4.77,
    10: 1.19,
    11: 0.149,
    12: 0.037,
}


def encode(lat: float, lon: float, precision: int = 7) -> str:
    """Encode a WGS84 point to a geohash of ``precision`` characters."""
    if not (1 <= precision <= 12):
        raise ValueError("precision must be in [1, 12]")
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        raise ValueError(f"invalid coordinates ({lat}, {lon})")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars: List[str] = []
    bit = 0
    ch = 0
    even = True  # even bits encode longitude
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                ch = (ch << 1) | 1
                lon_lo = mid
            else:
                ch <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                ch = (ch << 1) | 1
                lat_lo = mid
            else:
                ch <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == 5:
            chars.append(_BASE32[ch])
            bit = 0
            ch = 0
    return "".join(chars)


def decode_bbox(geohash: str) -> Tuple[float, float, float, float]:
    """Decode a geohash into its cell bounds ``(min_lat, min_lon, max_lat, max_lon)``."""
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for c in geohash.lower():
        try:
            value = _BASE32_INDEX[c]
        except KeyError:
            raise ValueError(f"invalid geohash character {c!r} in {geohash!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return lat_lo, lon_lo, lat_hi, lon_hi


def decode(geohash: str) -> Tuple[float, float]:
    """Decode a geohash to its cell-center ``(lat, lon)``."""
    min_lat, min_lon, max_lat, max_lon = decode_bbox(geohash)
    return (min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0


def neighbors(geohash: str) -> List[str]:
    """The up-to-8 adjacent geohash cells at the same precision.

    Computed by re-encoding the centers of the neighboring cells, which
    sidesteps the classic per-border lookup tables and handles poles/meridian
    wrapping by clamping.
    """
    min_lat, min_lon, max_lat, max_lon = decode_bbox(geohash)
    dlat = max_lat - min_lat
    dlon = max_lon - min_lon
    clat = (min_lat + max_lat) / 2.0
    clon = (min_lon + max_lon) / 2.0
    out = []
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            lat = clat + dr * dlat
            lon = clon + dc * dlon
            if not (-90.0 <= lat <= 90.0):
                continue
            if lon > 180.0:
                lon -= 360.0
            elif lon < -180.0:
                lon += 360.0
            h = encode(lat, lon, len(geohash))
            if h != geohash and h not in out:  # crowdlint: disable=CW501 -- out holds at most 8 neighbors
                out.append(h)
    return out


def expand(geohash: str) -> List[str]:
    """The cell itself plus its neighbors (the usual radius-query seed set)."""
    return [geohash] + neighbors(geohash)


def precision_for_cell_size_m(cell_size_m: float) -> int:
    """Smallest precision whose cells are no larger than ``cell_size_m``."""
    if cell_size_m <= 0:
        raise ValueError("cell size must be positive")
    for precision in range(1, 13):
        if _CELL_SIZE_M[precision] <= cell_size_m:
            return precision
    return 12
