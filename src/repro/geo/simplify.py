"""Polyline simplification (Douglas–Peucker) for trace rendering.

A day of GPS fixes is hundreds of points; rendering them raw produces
megabyte SVGs.  Douglas–Peucker keeps the shape within a metric tolerance
with a fraction of the vertices.
"""

from __future__ import annotations

from typing import List, Sequence

from .point import GeoPoint, haversine_m
from .projection import EquirectangularProjection

__all__ = ["simplify_polyline", "perpendicular_distance_m"]


def perpendicular_distance_m(point: GeoPoint, start: GeoPoint, end: GeoPoint) -> float:
    """Distance from ``point`` to the segment ``start–end``, in meters.

    Computed on the local tangent plane centered at ``start`` — exact enough
    at city scale, and cheap.
    """
    projection = EquirectangularProjection(start)
    px, py = projection.forward(point.lat, point.lon)
    ex, ey = projection.forward(end.lat, end.lon)
    seg_len_sq = ex * ex + ey * ey
    if seg_len_sq == 0.0:
        return haversine_m(point.lat, point.lon, start.lat, start.lon)
    # Project onto the segment, clamped to [0, 1].
    t = max(0.0, min(1.0, (px * ex + py * ey) / seg_len_sq))
    cx, cy = t * ex, t * ey
    return ((px - cx) ** 2 + (py - cy) ** 2) ** 0.5


def simplify_polyline(
    points: Sequence[GeoPoint], tolerance_m: float = 25.0
) -> List[GeoPoint]:
    """Douglas–Peucker simplification with a metric tolerance.

    Endpoints are always kept; any removed point lies within
    ``tolerance_m`` of the simplified polyline.  Iterative (explicit stack)
    so kilometre-long traces cannot hit the recursion limit.
    """
    if tolerance_m <= 0:
        raise ValueError("tolerance must be positive")
    n = len(points)
    if n <= 2:
        return list(points)

    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        # The farthest intermediate point from the chord lo–hi.
        best_dist = -1.0
        best_idx = lo
        for i in range(lo + 1, hi):
            d = perpendicular_distance_m(points[i], points[lo], points[hi])
            if d > best_dist:
                best_dist = d
                best_idx = i
        if best_dist > tolerance_m:
            keep[best_idx] = True
            stack.append((lo, best_idx))
            stack.append((best_idx, hi))
    return [p for p, kept in zip(points, keep) if kept]
