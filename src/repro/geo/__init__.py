"""Geographic substrate: points, boxes, grids, indexes, clustering.

This package is the spatial foundation of the CrowdWeb reproduction: the
microcell grid that the crowd views aggregate into, the projections used by
the SVG city renderer, and the clustering/index structures used by the data
generator and the web API.
"""

from .bbox import NYC_BBOX, BoundingBox
from .dbscan import NOISE, DBSCANResult, dbscan
from .geohash import decode as geohash_decode
from .geohash import decode_bbox as geohash_decode_bbox
from .geohash import encode as geohash_encode
from .geohash import neighbors as geohash_neighbors
from .geohash import precision_for_cell_size_m
from .grid import CellIndex, Microcell, MicrocellGrid
from .point import (
    EARTH_RADIUS_M,
    GeoPoint,
    centroid,
    destination_point,
    equirectangular_m,
    haversine_m,
    initial_bearing_deg,
    midpoint,
    normalize_lon,
    path_length_m,
    validate_lat_lon,
)
from .projection import (
    EquirectangularProjection,
    ScreenProjection,
    haversine_matrix_m,
    pairwise_haversine_m,
)
from .quadtree import QuadTree, QuadTreeEntry
from .simplify import perpendicular_distance_m, simplify_polyline

__all__ = [
    "EARTH_RADIUS_M",
    "NYC_BBOX",
    "NOISE",
    "BoundingBox",
    "CellIndex",
    "DBSCANResult",
    "EquirectangularProjection",
    "GeoPoint",
    "Microcell",
    "MicrocellGrid",
    "QuadTree",
    "QuadTreeEntry",
    "ScreenProjection",
    "centroid",
    "dbscan",
    "destination_point",
    "equirectangular_m",
    "geohash_decode",
    "geohash_decode_bbox",
    "geohash_encode",
    "geohash_neighbors",
    "haversine_m",
    "haversine_matrix_m",
    "initial_bearing_deg",
    "midpoint",
    "normalize_lon",
    "pairwise_haversine_m",
    "path_length_m",
    "perpendicular_distance_m",
    "precision_for_cell_size_m",
    "simplify_polyline",
    "validate_lat_lon",
]
