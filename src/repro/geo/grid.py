"""Microcell grid — the spatial unit of CrowdWeb's city-scale view.

The paper aggregates crowd members into *microcells* ("any user with a
pattern of visiting a certain microcell (e.g. shops) at a certain selected
time ... will appear in the smart city at the selected time").  We realize a
microcell as one cell of a regular lat/lon grid laid over the study area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from .bbox import BoundingBox
from .point import GeoPoint

__all__ = ["CellIndex", "Microcell", "MicrocellGrid"]

#: A grid cell address: (row, col), row 0 at the southern edge.
CellIndex = Tuple[int, int]


@dataclass(frozen=True)
class Microcell:
    """One grid cell: its address, geographic bounds, and center."""

    index: CellIndex
    bbox: BoundingBox

    @property
    def center(self) -> GeoPoint:
        return self.bbox.center

    @property
    def cell_id(self) -> str:
        """Stable string id like ``"r12c07"`` used in JSON APIs and reports."""
        row, col = self.index
        return f"r{row:03d}c{col:03d}"


class MicrocellGrid:
    """A regular grid over a bounding box with approximately square cells.

    Parameters
    ----------
    bbox:
        Study area.  Points outside raise :class:`ValueError` from
        :meth:`cell_index` (use :meth:`cell_index_clamped` to snap instead).
    cell_size_m:
        Target edge length of a cell in meters.  Rows/cols are chosen so the
        actual cell size is as close as possible while tiling exactly.
    """

    def __init__(self, bbox: BoundingBox, cell_size_m: float = 500.0) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.bbox = bbox
        self.cell_size_m = float(cell_size_m)
        height_m = max(bbox.height_m(), 1e-9)
        width_m = max(bbox.width_m(), 1e-9)
        self.n_rows = max(1, round(height_m / cell_size_m))
        self.n_cols = max(1, round(width_m / cell_size_m))
        self._dlat = bbox.lat_span / self.n_rows if bbox.lat_span else 0.0
        self._dlon = bbox.lon_span / self.n_cols if bbox.lon_span else 0.0

    # ---------------------------------------------------------------- lookup

    def cell_index(self, lat: float, lon: float) -> CellIndex:
        """Cell address of a point strictly inside the study area."""
        if not self.bbox.contains_lat_lon(lat, lon):
            raise ValueError(f"point ({lat}, {lon}) outside grid bbox {self.bbox}")
        return self._index_unchecked(lat, lon)

    def cell_index_clamped(self, lat: float, lon: float) -> CellIndex:
        """Cell address of the nearest cell — never raises."""
        lat = min(max(lat, self.bbox.min_lat), self.bbox.max_lat)
        lon = min(max(lon, self.bbox.min_lon), self.bbox.max_lon)
        return self._index_unchecked(lat, lon)

    def _index_unchecked(self, lat: float, lon: float) -> CellIndex:
        row = int((lat - self.bbox.min_lat) / self._dlat) if self._dlat else 0
        col = int((lon - self.bbox.min_lon) / self._dlon) if self._dlon else 0
        return (min(row, self.n_rows - 1), min(col, self.n_cols - 1))

    def cell(self, index: CellIndex) -> Microcell:
        """The :class:`Microcell` at a grid address."""
        row, col = index
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(f"cell index {index} outside {self.n_rows}x{self.n_cols} grid")
        cell_bbox = BoundingBox(
            self.bbox.min_lat + row * self._dlat,
            self.bbox.min_lon + col * self._dlon,
            self.bbox.min_lat + (row + 1) * self._dlat,
            self.bbox.min_lon + (col + 1) * self._dlon,
        )
        return Microcell((row, col), cell_bbox)

    def cell_for_point(self, point: GeoPoint) -> Microcell:
        return self.cell(self.cell_index(point.lat, point.lon))

    def cell_by_id(self, cell_id: str) -> Microcell:
        """Parse a ``"r###c###"`` id back into a cell."""
        try:
            row_part, col_part = cell_id.lstrip("r").split("c")
            return self.cell((int(row_part), int(col_part)))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"malformed cell id {cell_id!r}") from exc

    # ------------------------------------------------------------- traversal

    def __len__(self) -> int:
        return self.n_rows * self.n_cols

    def __iter__(self) -> Iterator[Microcell]:
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield self.cell((row, col))

    def neighbors(self, index: CellIndex, diagonal: bool = True) -> List[CellIndex]:
        """Adjacent cell addresses (8-connected by default, 4 otherwise)."""
        row, col = index
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        out = []
        for dr, dc in offsets:
            r, c = row + dr, col + dc
            if 0 <= r < self.n_rows and 0 <= c < self.n_cols:
                out.append((r, c))
        return out

    def bin_points(self, points: Iterable[GeoPoint]) -> Dict[CellIndex, int]:
        """Histogram of points per cell (points outside the bbox are clamped)."""
        counts: Dict[CellIndex, int] = {}
        for p in points:
            idx = self.cell_index_clamped(p.lat, p.lon)
            counts[idx] = counts.get(idx, 0) + 1
        return counts

    def cells_within(self, center: GeoPoint, radius_m: float) -> List[Microcell]:
        """Cells whose center lies within ``radius_m`` of ``center``."""
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        # Conservative candidate window in cell units, then exact filter.
        rows_span = math.ceil(radius_m / max(self.cell_height_m(), 1e-9)) + 1
        cols_span = math.ceil(radius_m / max(self.cell_width_m(), 1e-9)) + 1
        c_row, c_col = self.cell_index_clamped(center.lat, center.lon)
        hits = []
        for row in range(max(0, c_row - rows_span), min(self.n_rows, c_row + rows_span + 1)):
            for col in range(max(0, c_col - cols_span), min(self.n_cols, c_col + cols_span + 1)):
                cell = self.cell((row, col))
                if center.distance_to(cell.center) <= radius_m:
                    hits.append(cell)
        return hits

    # ------------------------------------------------------------ dimensions

    def cell_width_m(self) -> float:
        return self.bbox.width_m() / self.n_cols

    def cell_height_m(self) -> float:
        return self.bbox.height_m() / self.n_rows

    def __repr__(self) -> str:
        return (
            f"MicrocellGrid({self.n_rows}x{self.n_cols} cells, "
            f"~{self.cell_width_m():.0f}m x {self.cell_height_m():.0f}m)"
        )
