"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from .point import GeoPoint, haversine_m, validate_lat_lon

__all__ = ["BoundingBox", "NYC_BBOX"]


@dataclass(frozen=True)
class BoundingBox:
    """A lat/lon axis-aligned rectangle (no antimeridian crossing).

    ``min_lat <= max_lat`` and ``min_lon <= max_lon`` are enforced; boxes that
    cross the antimeridian must be split by the caller.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        validate_lat_lon(self.min_lat, self.min_lon)
        validate_lat_lon(self.max_lat, self.max_lon)
        if self.min_lat > self.max_lat:
            raise ValueError(f"min_lat {self.min_lat} > max_lat {self.max_lat}")
        if self.min_lon > self.max_lon:
            raise ValueError(f"min_lon {self.min_lon} > max_lon {self.max_lon}")

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Tightest box covering ``points`` (raises on an empty iterable)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot build a bounding box from zero points") from None
        min_lat = max_lat = first.lat
        min_lon = max_lon = first.lon
        for p in it:
            min_lat = min(min_lat, p.lat)
            max_lat = max(max_lat, p.lat)
            min_lon = min(min_lon, p.lon)
            max_lon = max(max_lon, p.lon)
        return cls(min_lat, min_lon, max_lat, max_lon)

    @classmethod
    def around(cls, center: GeoPoint, radius_m: float) -> "BoundingBox":
        """A box that conservatively contains the circle of ``radius_m`` meters."""
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        north = center.offset(0.0, radius_m)
        south = center.offset(180.0, radius_m)
        east = center.offset(90.0, radius_m)
        west = center.offset(270.0, radius_m)
        return cls(
            min(south.lat, center.lat),
            min(west.lon, center.lon),
            max(north.lat, center.lat),
            max(east.lon, center.lon),
        )

    @property
    def center(self) -> GeoPoint:
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    @property
    def lat_span(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def lon_span(self) -> float:
        return self.max_lon - self.min_lon

    def width_m(self) -> float:
        """East-west extent measured along the box's mid latitude."""
        mid = (self.min_lat + self.max_lat) / 2.0
        return haversine_m(mid, self.min_lon, mid, self.max_lon)

    def height_m(self) -> float:
        """North-south extent in meters."""
        return haversine_m(self.min_lat, self.min_lon, self.max_lat, self.min_lon)

    def contains(self, point: GeoPoint) -> bool:
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def contains_lat_lon(self, lat: float, lon: float) -> bool:
        return self.min_lat <= lat <= self.max_lat and self.min_lon <= lon <= self.max_lon

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.min_lat, other.min_lat),
            max(self.min_lon, other.min_lon),
            min(self.max_lat, other.max_lat),
            min(self.max_lon, other.max_lon),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def expand(self, margin_deg: float) -> "BoundingBox":
        """Grow the box by ``margin_deg`` on every side (clamped to valid range)."""
        return BoundingBox(
            max(-90.0, self.min_lat - margin_deg),
            max(-180.0, self.min_lon - margin_deg),
            min(90.0, self.max_lat + margin_deg),
            min(180.0, self.max_lon + margin_deg),
        )

    def quadrants(self) -> Tuple["BoundingBox", "BoundingBox", "BoundingBox", "BoundingBox"]:
        """Split into (SW, SE, NW, NE) quadrants — used by the quadtree."""
        mid_lat = (self.min_lat + self.max_lat) / 2.0
        mid_lon = (self.min_lon + self.max_lon) / 2.0
        return (
            BoundingBox(self.min_lat, self.min_lon, mid_lat, mid_lon),
            BoundingBox(self.min_lat, mid_lon, mid_lat, self.max_lon),
            BoundingBox(mid_lat, self.min_lon, self.max_lat, mid_lon),
            BoundingBox(mid_lat, mid_lon, self.max_lat, self.max_lon),
        )

    def corners(self) -> Iterator[GeoPoint]:
        yield GeoPoint(self.min_lat, self.min_lon)
        yield GeoPoint(self.min_lat, self.max_lon)
        yield GeoPoint(self.max_lat, self.max_lon)
        yield GeoPoint(self.max_lat, self.min_lon)


#: The rough New York City study area of the Foursquare NYC dataset.
NYC_BBOX = BoundingBox(min_lat=40.55, min_lon=-74.10, max_lat=40.95, max_lon=-73.68)
