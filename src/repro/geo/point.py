"""Geographic points and great-circle geometry.

All coordinates are WGS84 latitude/longitude in decimal degrees.  Distances
are returned in meters.  The functions here are deliberately dependency-free
(plain ``math``) so they can be used in hot loops without pulling array
machinery in; vectorized variants live in :mod:`repro.geo.projection`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "haversine_m",
    "equirectangular_m",
    "initial_bearing_deg",
    "destination_point",
    "midpoint",
    "centroid",
    "normalize_lon",
    "path_length_m",
    "validate_lat_lon",
]

#: Mean Earth radius in meters (IUGG).
EARTH_RADIUS_M = 6_371_008.8

_DEG2RAD = math.pi / 180.0
_RAD2DEG = 180.0 / math.pi


def validate_lat_lon(lat: float, lon: float) -> None:
    """Raise :class:`ValueError` if ``(lat, lon)`` is outside WGS84 bounds."""
    if not (-90.0 <= lat <= 90.0):
        raise ValueError(f"latitude {lat!r} out of range [-90, 90]")
    if not (-180.0 <= lon <= 180.0):
        raise ValueError(f"longitude {lon!r} out of range [-180, 180]")


def normalize_lon(lon: float) -> float:
    """Wrap a longitude into ``[-180, 180)``."""
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


@dataclass(frozen=True, order=True)
class GeoPoint:
    """An immutable WGS84 point.

    ``GeoPoint`` is hashable and ordered (lexicographically by ``(lat, lon)``)
    so it can key dictionaries and sort deterministically in reports.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_lat_lon(self.lat, self.lon)

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in meters."""
        return haversine_m(self.lat, self.lon, other.lat, other.lon)

    def fast_distance_to(self, other: "GeoPoint") -> float:
        """Equirectangular-approximation distance in meters (fast, ~city scale)."""
        return equirectangular_m(self.lat, self.lon, other.lat, other.lon)

    def bearing_to(self, other: "GeoPoint") -> float:
        """Initial great-circle bearing toward ``other`` in degrees [0, 360)."""
        return initial_bearing_deg(self.lat, self.lon, other.lat, other.lon)

    def offset(self, bearing_deg: float, distance_m: float) -> "GeoPoint":
        """The point ``distance_m`` meters away along ``bearing_deg``."""
        lat, lon = destination_point(self.lat, self.lon, bearing_deg, distance_m)
        return GeoPoint(lat, lon)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.lat, self.lon)

    def __iter__(self) -> Iterator[float]:
        yield self.lat
        yield self.lon


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS84 points, in meters.

    Numerically stable for both tiny and antipodal separations.
    """
    phi1 = lat1 * _DEG2RAD
    phi2 = lat2 * _DEG2RAD
    dphi = (lat2 - lat1) * _DEG2RAD
    dlam = (lon2 - lon1) * _DEG2RAD
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def equirectangular_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Equirectangular-approximation distance in meters.

    About 3x faster than :func:`haversine_m`; error is negligible at the
    city scale (tens of kilometers) CrowdWeb operates at.
    """
    mean_phi = (lat1 + lat2) * 0.5 * _DEG2RAD
    x = (lon2 - lon1) * _DEG2RAD * math.cos(mean_phi)
    y = (lat2 - lat1) * _DEG2RAD
    return EARTH_RADIUS_M * math.hypot(x, y)


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing from point 1 toward point 2, degrees in [0, 360)."""
    phi1 = lat1 * _DEG2RAD
    phi2 = lat2 * _DEG2RAD
    dlam = (lon2 - lon1) * _DEG2RAD
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    theta = math.atan2(y, x) * _RAD2DEG
    return theta % 360.0


def destination_point(
    lat: float, lon: float, bearing_deg: float, distance_m: float
) -> Tuple[float, float]:
    """The WGS84 point reached by traveling ``distance_m`` along ``bearing_deg``."""
    delta = distance_m / EARTH_RADIUS_M
    theta = bearing_deg * _DEG2RAD
    phi1 = lat * _DEG2RAD
    lam1 = lon * _DEG2RAD
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * sin_phi2,
    )
    return phi2 * _RAD2DEG, normalize_lon(lam2 * _RAD2DEG)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Great-circle midpoint of ``a`` and ``b``."""
    phi1 = a.lat * _DEG2RAD
    lam1 = a.lon * _DEG2RAD
    phi2 = b.lat * _DEG2RAD
    dlam = (b.lon - a.lon) * _DEG2RAD
    bx = math.cos(phi2) * math.cos(dlam)
    by = math.cos(phi2) * math.sin(dlam)
    phi3 = math.atan2(
        math.sin(phi1) + math.sin(phi2),
        math.hypot(math.cos(phi1) + bx, by),
    )
    lam3 = lam1 + math.atan2(by, math.cos(phi1) + bx)
    return GeoPoint(phi3 * _RAD2DEG, normalize_lon(lam3 * _RAD2DEG))


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Spherical centroid (mean of unit vectors) of a non-empty point set."""
    xs = ys = zs = 0.0
    n = 0
    for p in points:
        phi = p.lat * _DEG2RAD
        lam = p.lon * _DEG2RAD
        xs += math.cos(phi) * math.cos(lam)
        ys += math.cos(phi) * math.sin(lam)
        zs += math.sin(phi)
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point set is undefined")
    xs /= n
    ys /= n
    zs /= n
    hyp = math.hypot(xs, ys)
    if hyp == 0.0 and zs == 0.0:
        raise ValueError("centroid is degenerate (antipodal points cancel out)")
    return GeoPoint(math.atan2(zs, hyp) * _RAD2DEG, math.atan2(ys, xs) * _RAD2DEG)


def path_length_m(points: Sequence[GeoPoint]) -> float:
    """Total haversine length of a polyline, in meters."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))
