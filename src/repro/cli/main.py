"""The ``crowdweb`` command-line interface.

Subcommands
-----------
``generate``  synthesize a Foursquare-like dataset and write it to disk
``stats``     print the dataset-statistics table (paper §I.1)
``mine``      mine and print one user's mobility patterns
``crowd``     print the crowd snapshot of one time window
``figures``   regenerate every paper figure into an output directory
``serve``     run the web platform
``predict``   compare next-place predictors on a dataset
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..data import (
    ActiveUserFilter,
    SMALL_CONFIG,
    SynthConfig,
    dataset_stats,
    load_dataset,
    save_dataset,
    synthetic_dataset,
)
from ..exec import ExecConfig
from ..experiments import run_all, small_pipeline_config
from ..mining import ModifiedPrefixSpanConfig
from ..obs import enable as obs_enable, get_observer, render_metrics, \
    render_trace_tree, save_dump
from ..patterns import detect_user_patterns, summarize_profile
from ..pipeline import PipelineConfig, run_pipeline
from ..taxonomy import AbstractionLevel, build_default_taxonomy

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdweb",
        description="CrowdWeb reproduction: crowd mobility patterns in smart cities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workers_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for mining/aggregation "
                            "(1 = serial, 0 = all cores)")

    def add_trace_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", action="store_true",
                       help="enable observability: print the trace tree and "
                            "metrics afterwards, and write the dump file "
                            "`python -m repro.obs` reads")

    p_generate = sub.add_parser("generate", help="synthesize a dataset")
    p_generate.add_argument("output", type=Path, help="output file (.tsv/.csv/.jsonl)")
    p_generate.add_argument("--scale", choices=["small", "paper"], default="small")
    p_generate.add_argument("--seed", type=int, default=None)

    p_stats = sub.add_parser("stats", help="dataset statistics table")
    p_stats.add_argument("dataset", type=Path)

    p_mine = sub.add_parser("mine", help="mine one user's patterns")
    p_mine.add_argument("dataset", type=Path)
    p_mine.add_argument("user_id")
    p_mine.add_argument("--min-support", type=float, default=0.5)
    p_mine.add_argument("--level", choices=["venue", "leaf", "root"], default="root")
    add_trace_flag(p_mine)

    p_crowd = sub.add_parser("crowd", help="crowd snapshot at one hour")
    p_crowd.add_argument("dataset", type=Path)
    p_crowd.add_argument("--hour", type=float, default=9.5)
    p_crowd.add_argument("--min-days", type=int, default=25,
                         help="activity-filter qualifying-day threshold")
    p_crowd.add_argument("--months", type=int, default=2,
                         help="densest-window length in months")
    add_workers_flag(p_crowd)
    add_trace_flag(p_crowd)

    p_figures = sub.add_parser("figures", help="regenerate all paper figures")
    p_figures.add_argument("output_dir", type=Path)
    p_figures.add_argument("--scale", choices=["small", "paper"], default="small")
    p_figures.add_argument("--seed", type=int, default=None)

    p_serve = sub.add_parser("serve", help="run the web platform")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8460)
    p_serve.add_argument("--scale", choices=["small", "paper"], default="small")
    add_workers_flag(p_serve)

    p_predict = sub.add_parser("predict", help="compare next-place predictors")
    p_predict.add_argument("dataset", type=Path)
    p_predict.add_argument("--min-days", type=int, default=25)
    p_predict.add_argument("--months", type=int, default=2)
    add_workers_flag(p_predict)
    add_trace_flag(p_predict)

    p_export = sub.add_parser("export-spmf",
                              help="export a user's sequence DB + patterns in SPMF format")
    p_export.add_argument("dataset", type=Path)
    p_export.add_argument("user_id")
    p_export.add_argument("output", type=Path, help="output .spmf file")
    p_export.add_argument("--min-support", type=float, default=0.5)
    p_export.add_argument("--level", choices=["venue", "leaf", "root"], default="root")

    p_monitor = sub.add_parser("monitor",
                               help="replay a user's last day against their routine")
    p_monitor.add_argument("dataset", type=Path)
    p_monitor.add_argument("user_id")
    p_monitor.add_argument("--min-support", type=float, default=0.4)
    p_monitor.add_argument("--tolerance", type=int, default=1)

    p_audit = sub.add_parser("audit", help="data-quality audit of a dataset")
    p_audit.add_argument("dataset", type=Path)
    p_audit.add_argument("--strict", action="store_true",
                         help="exit non-zero on warnings too")

    p_analyze = sub.add_parser("analyze", help="mobility analytics per user")
    p_analyze.add_argument("dataset", type=Path)
    p_analyze.add_argument("--min-checkins", type=int, default=30)
    p_analyze.add_argument("--top", type=int, default=15,
                           help="show the N most predictable users")

    p_comm = sub.add_parser("communities", help="behavioural communities")
    p_comm.add_argument("dataset", type=Path)
    p_comm.add_argument("--min-days", type=int, default=25)
    p_comm.add_argument("--months", type=int, default=2)
    p_comm.add_argument("--min-similarity", type=float, default=0.05)
    add_workers_flag(p_comm)
    add_trace_flag(p_comm)

    return parser


def _cmd_generate(args) -> int:
    if args.scale == "paper":
        config = SynthConfig() if args.seed is None else SynthConfig(seed=args.seed)
    else:
        config = SMALL_CONFIG if args.seed is None else SynthConfig(
            **{**SMALL_CONFIG.__dict__, "seed": args.seed}
        )
    dataset = synthetic_dataset(config)
    save_dataset(dataset, args.output)
    print(f"wrote {len(dataset):,} check-ins ({dataset.n_users} users) to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    dataset = load_dataset(args.dataset)
    for key, value in dataset_stats(dataset).as_rows():
        print(f"{key:>24}: {value}")
    return 0


def _cmd_mine(args) -> int:
    dataset = load_dataset(args.dataset)
    if not dataset.for_user(args.user_id):
        print(f"error: user {args.user_id!r} not in dataset", file=sys.stderr)
        return 2
    taxonomy = build_default_taxonomy()
    profile = detect_user_patterns(
        dataset,
        args.user_id,
        taxonomy,
        level=AbstractionLevel(args.level),
        config=ModifiedPrefixSpanConfig(min_support=args.min_support),
    )
    print(summarize_profile(profile, k=20))
    return 0


def _pipeline_for(args):
    dataset = load_dataset(args.dataset)
    config = PipelineConfig(
        window_months=args.months,
        activity=ActiveUserFilter(min_qualifying_days=args.min_days),
        exec=ExecConfig.from_workers(getattr(args, "workers", 1)),
    )
    return run_pipeline(dataset, config)


def _cmd_crowd(args) -> int:
    result = _pipeline_for(args)
    snap = result.timeline.at_hour(args.hour)
    print(f"window {snap.window.label}: {snap.n_users} users placed")
    for group in snap.groups(min_size=1)[:15]:
        cell = result.grid.cell(group.cell)
        center = cell.center
        print(
            f"  {group.label:<14} x{group.size:<3} cell {cell.cell_id} "
            f"({center.lat:.4f}, {center.lon:.4f}): {', '.join(group.user_ids[:6])}"
        )
    return 0


def _cmd_figures(args) -> int:
    out = run_all(args.output_dir, scale=args.scale, seed=args.seed)
    print(f"regenerated {len(out.files)} artifacts in {out.output_dir} "
          f"({out.elapsed_s:.1f}s)")
    for name in sorted(out.files):
        print(f"  {name}")
    return 0


def _cmd_serve(args) -> int:
    from ..web.__main__ import main as web_main

    return web_main(["--host", args.host, "--port", str(args.port),
                     "--scale", args.scale, "--workers", str(args.workers)])


def _cmd_predict(args) -> int:
    from ..experiments.runner import _prediction_comparison

    result = _pipeline_for(args)
    comparison = _prediction_comparison(result)
    reports = comparison.get("reports", {})
    if not reports:
        print("no users with enough data to evaluate")
        return 1
    print(f"{comparison.get('n_users', 0)} users, leaf-level next-place prediction")
    print(f"{'predictor':<16}{'examples':>10}{'acc@1':>9}{'acc@3':>9}")
    for name, row in reports.items():
        print(f"{name:<16}{row['n_examples']:>10}{row['acc@1']:>9.1%}{row['acc@3']:>9.1%}")
    return 0


def _cmd_export_spmf(args) -> int:
    from ..mining import modified_prefixspan, write_spmf_database, write_spmf_patterns
    from ..sequences import build_user_database

    dataset = load_dataset(args.dataset)
    if not dataset.for_user(args.user_id):
        print(f"error: user {args.user_id!r} not in dataset", file=sys.stderr)
        return 2
    taxonomy = build_default_taxonomy()
    db = build_user_database(dataset, args.user_id, taxonomy,
                             AbstractionLevel(args.level))
    codec = write_spmf_database(db, args.output)
    patterns = modified_prefixspan(
        db, ModifiedPrefixSpanConfig(min_support=args.min_support), taxonomy
    )
    # Patterns may contain canonicalized items absent from raw sequences
    # under ancestor matching; export only codec-representable ones.
    exportable = [p for p in patterns
                  if all(item in codec for item in p.items)]
    patterns_path = args.output.with_suffix(args.output.suffix + ".patterns")
    write_spmf_patterns(exportable, codec, patterns_path)
    print(f"wrote {len(db)} sequences to {args.output} "
          f"and {len(exportable)} patterns to {patterns_path}")
    return 0


def _cmd_monitor(args) -> int:
    from ..data import CheckInDataset
    from ..patterns import PatternMonitor
    from ..sequences import make_labeler, sessionize_user

    dataset = load_dataset(args.dataset)
    records = dataset.for_user(args.user_id)
    if not records:
        print(f"error: user {args.user_id!r} not in dataset", file=sys.stderr)
        return 2
    taxonomy = build_default_taxonomy()
    # Mine on everything except the user's last recorded day.
    last_day = records[-1].local_date
    history = CheckInDataset(
        [c for c in records if c.local_date < last_day], dataset.venues,
        name="history",
    )
    profile = detect_user_patterns(
        history, args.user_id, taxonomy,
        config=ModifiedPrefixSpanConfig(min_support=args.min_support),
    )
    if profile.n_patterns == 0:
        print("no routine detected — nothing to monitor")
        return 1
    labeler = make_labeler(taxonomy, profile.level)
    today = CheckInDataset(
        [c for c in records if c.local_date == last_day], dataset.venues,
        name="today",
    )
    sessions = sessionize_user(today, args.user_id, labeler, profile.binning)
    monitor = PatternMonitor(profile, tolerance_bins=args.tolerance)
    print(f"replaying {last_day} against {profile.n_patterns} patterns:")
    for session in sessions:
        for item in session.items:
            monitor.observe(item)
            print(f"  {profile.binning.label(item.bin)}  {item.label:<16} "
                  f"conformance {monitor.conformance():.0%}")
    monitor.advance_to(profile.binning.n_bins - 1)
    for progress in monitor.status():
        labels = " → ".join(i.label for i in progress.pattern.items)
        print(f"  [{progress.state.value:<11}] {labels}")
    return 0


def _cmd_audit(args) -> int:
    from ..data import audit_dataset

    dataset = load_dataset(args.dataset)
    report = audit_dataset(dataset, build_default_taxonomy())
    print(report.summary())
    if not report.ok:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_analyze(args) -> int:
    import numpy as np

    from ..analysis import user_mobility_metrics

    dataset = load_dataset(args.dataset)
    rows = []
    for uid in dataset.user_ids():
        if len(dataset.for_user(uid)) >= args.min_checkins:
            rows.append(user_mobility_metrics(dataset, uid))
    if not rows:
        print("no users with enough check-ins")
        return 1
    rows.sort(key=lambda m: -m.predictability_bound)
    bounds = [m.predictability_bound for m in rows]
    print(f"{len(rows)} users analyzed; median predictability bound "
          f"{np.median(bounds):.0%}")
    print(f"{'user':<8}{'checkins':>9}{'venues':>8}{'rg(km)':>8}"
          f"{'S_est':>7}{'Pi_max':>8}")
    for m in rows[:args.top]:
        print(f"{m.user_id:<8}{m.n_checkins:>9}{m.n_distinct_venues:>8}"
              f"{m.radius_of_gyration_m / 1000:>8.1f}{m.s_estimated:>7.2f}"
              f"{m.predictability_bound:>8.0%}")
    return 0


def _cmd_communities(args) -> int:
    from collections import Counter

    from ..crowd import detect_communities

    result = _pipeline_for(args)
    communities = detect_communities(result.profiles,
                                     min_similarity=args.min_similarity)
    print(f"{len(communities)} communities over {result.n_users} users")
    for community in communities:
        labels = Counter()
        for uid in community.user_ids:
            labels.update(result.profiles[uid].labels())
        themes = ", ".join(label for label, _ in labels.most_common(3)) or "-"
        print(f"  #{community.community_id} x{community.size}: "
              f"{', '.join(community.user_ids[:8])} — {themes}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "mine": _cmd_mine,
    "crowd": _cmd_crowd,
    "figures": _cmd_figures,
    "serve": _cmd_serve,
    "predict": _cmd_predict,
    "analyze": _cmd_analyze,
    "audit": _cmd_audit,
    "communities": _cmd_communities,
    "export-spmf": _cmd_export_spmf,
    "monitor": _cmd_monitor,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    traced = getattr(args, "trace", False)
    if traced:
        obs_enable()
    code = _COMMANDS[args.command](args)
    if traced:
        observer = get_observer()
        print()
        print(render_trace_tree(observer.tracer.export()))
        print()
        print(render_metrics(observer.registry.snapshot()))
        path = save_dump(observer)
        print(f"\nobservability dump written to {path} "
              f"(inspect with `python -m repro.obs`)")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
