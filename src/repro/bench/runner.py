"""Pinned-seed perf benchmark runners.

Each runner generates a deterministic synthetic dataset for the requested
scale, times the competing implementations, and returns a
:class:`~repro.bench.schema.BenchReport`:

* :func:`run_mining_bench` — the phase-2 algorithmic core: the interned
  indexed :func:`~repro.mining.modified.modified_prefixspan` vs. the
  pool-rescan :func:`~repro.mining.modified.modified_prefixspan_reference`,
  on the busiest user's day database (ops = mining runs completed), plus
  the interning memory rows of :func:`run_interning_bench`.
* :func:`run_interning_bench` — database-build memory before/after
  interning: the retired tuple-of-items representation vs. the id-array
  representation, with tracemalloc peaks and deep-walked bytes/sequence.
* :func:`run_pipeline_bench` — the execution layer:
  :func:`~repro.patterns.detect_all_patterns` serial vs. the process
  backend at several worker counts (ops = users mined).
* :func:`run_obs_overhead_bench` — the observability layer's cost:
  serial phase 2 with the observer off vs. on, outputs asserted identical.

Every runner executes under a scoped :func:`repro.obs.observed` observer
and embeds its exported span trees in the report (``BenchReport.trace``),
so a ``BENCH_*.json`` carries its own profile.  Reports also record
whether the working tree was dirty; ``python -m repro.bench`` refuses to
overwrite committed reports from a dirty tree unless ``--force``-d.

``write_reports`` is what CI and ``python -m repro.bench`` call: it runs
the mining and pipeline benches and writes ``BENCH_mining.json`` /
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import tracemalloc
from datetime import date
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..data import SMALL_CONFIG, SynthConfig, generate
from ..exec import ExecConfig
from ..mining import (
    ModifiedPrefixSpanConfig,
    modified_prefixspan,
    modified_prefixspan_reference,
)
from ..obs import NULL_OBSERVER, observed, set_observer
from ..patterns import detect_all_patterns
from ..sequences import TimedItem, build_all_databases
from ..taxonomy import build_default_taxonomy
from .schema import BenchReport, BenchRow

__all__ = [
    "BENCH_MINING_FILENAME",
    "BENCH_OBS_FILENAME",
    "BENCH_PIPELINE_FILENAME",
    "SCALES",
    "run_interning_bench",
    "run_mining_bench",
    "run_obs_overhead_bench",
    "run_pipeline_bench",
    "write_reports",
]

BENCH_MINING_FILENAME = "BENCH_mining.json"
BENCH_PIPELINE_FILENAME = "BENCH_pipeline.json"
BENCH_OBS_FILENAME = "BENCH_obs.json"

#: Data scales, all fully pinned by their config seed.  ``smoke`` is the CI
#: gate (seconds); ``bench`` matches the figure benchmarks' mid-sized city;
#: ``paper`` is the full 1,083-user reproduction scale.
SCALES: Dict[str, SynthConfig] = {
    "smoke": SynthConfig(
        seed=7,
        n_users=24,
        n_venues=300,
        n_neighborhoods=6,
        start_date=date(2012, 4, 1),
        end_date=date(2012, 5, 15),
    ),
    "small": SMALL_CONFIG,
    "bench": SynthConfig(n_users=300, n_venues=2500, seed=20230701),
    "paper": SynthConfig(),
}


def _config_for(scale: str) -> SynthConfig:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown bench scale {scale!r} (expected one of {sorted(SCALES)})"
        ) from None


def _available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _git_state() -> Tuple[str, bool]:
    """(short revision or ``unknown``, does the tree have uncommitted changes?)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown", False
    rev = out.stdout.strip()
    if out.returncode != 0 or not rev:
        return "unknown", False
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return rev, False
    return rev, status.returncode == 0 and bool(status.stdout.strip())


def _git_rev() -> str:
    """Short git revision (``-dirty`` suffixed when the tree has changes),
    or ``unknown`` outside a checkout."""
    rev, dirty = _git_state()
    return f"{rev}-dirty" if dirty else rev


def _stamp(git_rev: Optional[str]) -> Tuple[str, bool]:
    """The (git_rev, dirty) pair a report should carry: an explicit caller
    override (assumed clean) or the probed state."""
    if git_rev is not None:
        return git_rev, False
    rev, dirty = _git_state()
    return (f"{rev}-dirty" if dirty else rev), dirty


def _time(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _deep_size_bytes(root: object) -> int:
    """Resident size of an object graph in bytes (shared objects once).

    An iterative ``sys.getsizeof`` walk over containers, instance dicts and
    slots, deduplicated by object identity — so representations that share
    item instances (interned vocabularies) are credited for the sharing.
    """
    seen = set()
    stack = [root]
    total = 0
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            obj_dict = getattr(obj, "__dict__", None)
            if obj_dict is not None:
                stack.append(obj_dict)
            for slot in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


def _traced(fn) -> Tuple[float, float, object]:
    """(wall seconds, tracemalloc peak in KiB, return value) of one call."""
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return elapsed, peak / 1024.0, value


def _interning_rows(scale: str) -> Tuple[BenchRow, BenchRow]:
    """Database-build memory rows: object representation vs. interned.

    Builds the dataset's per-user databases (interned id arrays + shared
    vocabulary), then materializes the same data the retired way — one
    fresh :class:`TimedItem` per occurrence in tuples-of-tuples — and
    measures both sides' tracemalloc build peak and deep-walked steady
    bytes per sequence.  The object row is the baseline (speedup 1.0).
    """
    synth = _config_for(scale)
    taxonomy = build_default_taxonomy()
    dataset = generate(synth).dataset

    interned_s, interned_peak_kb, databases = _traced(
        lambda: build_all_databases(dataset, taxonomy)
    )
    storage_all = [db.storage for db in databases.values()]
    n_sequences = sum(len(db) for db in databases.values()) or 1
    user_ids = sorted(databases)
    vocab = databases[user_ids[0]].vocab if user_ids else None

    def materialize_objects() -> List:
        worlds = []
        for db in databases.values():
            decode = vocab.decode_sequence
            worlds.append(
                tuple(
                    tuple(TimedItem(item.bin, item.label) for item in decode(arr))
                    for arr in db.encoded
                )
            )
        return worlds

    object_s, object_peak_kb, object_worlds = _traced(materialize_objects)
    object_bytes = _deep_size_bytes(object_worlds)
    interned_bytes = _deep_size_bytes((storage_all, vocab))
    del object_worlds
    return (
        BenchRow(
            name="db_build_object",
            wall_clock_s=object_s,
            ops_per_sec=n_sequences / object_s if object_s else 0.0,
            speedup_vs_serial=1.0,
            peak_tracemalloc_kb=object_peak_kb,
            bytes_per_sequence=object_bytes / n_sequences,
        ),
        BenchRow(
            name="db_build_interned",
            wall_clock_s=interned_s,
            ops_per_sec=n_sequences / interned_s if interned_s else 0.0,
            speedup_vs_serial=object_s / interned_s if interned_s else 0.0,
            peak_tracemalloc_kb=interned_peak_kb,
            bytes_per_sequence=interned_bytes / n_sequences,
        ),
    )


def run_interning_bench(
    scale: str = "bench", repeats: int = 1, git_rev: Optional[str] = None
) -> BenchReport:
    """Measure database-build memory before vs. after interning.

    ``repeats`` is accepted for CLI symmetry but memory peaks are
    deterministic per build, so one build per variant is measured.
    """
    synth = _config_for(scale)
    rows = _interning_rows(scale)
    rev, dirty = _stamp(git_rev)
    return BenchReport(
        benchmark="interning",
        scale=scale,
        seed=synth.seed,
        git_rev=rev,
        n_cpus=_available_cpus(),
        rows=rows,
        dirty=dirty,
    )


def run_mining_bench(
    scale: str = "bench", repeats: int = 1, git_rev: Optional[str] = None
) -> BenchReport:
    """Time the interned indexed miner against the reference core.

    Both variants run the paper's support sweep (0.25 / 0.5 / 0.75) on the
    busiest user's day database; their outputs are asserted identical, so a
    speedup can never come from mining less.  The report also carries the
    interning memory rows (``db_build_object`` / ``db_build_interned``) so
    one ``BENCH_mining.json`` captures both the time and the space side of
    the representation.
    """
    synth = _config_for(scale)
    taxonomy = build_default_taxonomy()
    dataset = generate(synth).dataset
    databases = build_all_databases(dataset, taxonomy)
    busiest = max(databases, key=lambda uid: len(databases[uid]))
    db = databases[busiest]
    configs = [ModifiedPrefixSpanConfig(min_support=s) for s in (0.25, 0.5, 0.75)]

    def run_interned() -> List:
        return [modified_prefixspan(db, cfg, taxonomy) for cfg in configs]

    def run_reference() -> List:
        return [modified_prefixspan_reference(db, cfg, taxonomy) for cfg in configs]

    with observed() as o:
        with o.span("bench.modified_prefixspan_reference", scale=scale,
                    repeats=repeats):
            reference_s, reference_out = _time(run_reference, repeats)
        with o.span("bench.modified_prefixspan_interned", scale=scale,
                    repeats=repeats):
            interned_s, interned_out = _time(run_interned, repeats)
    if interned_out != reference_out:
        raise AssertionError(
            "interned and reference miners disagree — refusing to report a "
            "speedup over different output"
        )
    ops = float(len(configs))
    rows = (
        BenchRow(
            name="modified_prefixspan_reference",
            wall_clock_s=reference_s,
            ops_per_sec=ops / reference_s if reference_s else 0.0,
            speedup_vs_serial=1.0,
        ),
        BenchRow(
            name="modified_prefixspan_interned",
            wall_clock_s=interned_s,
            ops_per_sec=ops / interned_s if interned_s else 0.0,
            speedup_vs_serial=reference_s / interned_s if interned_s else 0.0,
        ),
    ) + _interning_rows(scale)
    rev, dirty = _stamp(git_rev)
    return BenchReport(
        benchmark="mining",
        scale=scale,
        seed=synth.seed,
        git_rev=rev,
        n_cpus=_available_cpus(),
        rows=rows,
        dirty=dirty,
        trace=tuple(o.tracer.export()),
    )


def run_pipeline_bench(
    scale: str = "bench",
    workers: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    git_rev: Optional[str] = None,
) -> BenchReport:
    """Time phase 2 across execution backends: serial, then N processes.

    Every backend's profiles are asserted identical to the serial run's
    before any timing is reported.
    """
    synth = _config_for(scale)
    taxonomy = build_default_taxonomy()
    dataset = generate(synth).dataset
    n_users = dataset.n_users

    with observed() as o:
        with o.span("bench.detect_all_serial", scale=scale, repeats=repeats):
            serial_s, baseline = _time(
                lambda: detect_all_patterns(dataset, taxonomy), repeats
            )
        rows = [
            BenchRow(
                name="detect_all_patterns_serial",
                wall_clock_s=serial_s,
                ops_per_sec=n_users / serial_s if serial_s else 0.0,
                speedup_vs_serial=1.0,
            )
        ]
        for n in workers:
            exec_config = ExecConfig(backend="process", n_workers=n)
            with o.span(f"bench.detect_all_process_{n}w", scale=scale,
                        repeats=repeats):
                elapsed, profiles = _time(
                    lambda: detect_all_patterns(
                        dataset, taxonomy, exec_config=exec_config
                    ),
                    repeats,
                )
            if profiles != baseline:
                raise AssertionError(
                    f"process backend ({n} workers) diverged from serial output"
                )
            rows.append(
                BenchRow(
                    name=f"detect_all_patterns_process_{n}w",
                    wall_clock_s=elapsed,
                    ops_per_sec=n_users / elapsed if elapsed else 0.0,
                    speedup_vs_serial=serial_s / elapsed if elapsed else 0.0,
                )
            )
    rev, dirty = _stamp(git_rev)
    return BenchReport(
        benchmark="pipeline",
        scale=scale,
        seed=synth.seed,
        git_rev=rev,
        n_cpus=_available_cpus(),
        rows=tuple(rows),
        dirty=dirty,
        trace=tuple(o.tracer.export()),
    )


def run_obs_overhead_bench(
    scale: str = "bench",
    repeats: int = 3,
    git_rev: Optional[str] = None,
    max_overhead_ratio: float = 0.0,
) -> BenchReport:
    """Time serial phase 2 with observability off vs. on.

    Guards the "observability is free when off, cheap when on" promise:
    both variants' profiles are asserted identical before any timing is
    reported, so instrumentation can never change the science.  The
    disabled row is the baseline (``speedup_vs_serial=1.0``); the enabled
    row's speedup is its slowdown factor (e.g. 0.99 ≈ 1% overhead).

    ``max_overhead_ratio`` > 0 additionally asserts the enabled run is
    within that fraction of the disabled one (e.g. 0.02 for 2%) — off by
    default because single-digit-percent wall-clock asserts are flaky on
    shared CI hosts; the report records the ratio either way.
    """
    synth = _config_for(scale)
    taxonomy = build_default_taxonomy()
    dataset = generate(synth).dataset
    n_users = dataset.n_users

    # Pin the observer state for each variant, whatever the caller had.
    previous = set_observer(NULL_OBSERVER)
    try:
        off_s, baseline = _time(
            lambda: detect_all_patterns(dataset, taxonomy), repeats
        )
        with observed() as o:
            on_s, instrumented = _time(
                lambda: detect_all_patterns(dataset, taxonomy), repeats
            )
        trace = tuple(o.tracer.export())
    finally:
        set_observer(previous)
    if instrumented != baseline:
        raise AssertionError(
            "enabling observability changed detect_all_patterns output"
        )
    overhead = (on_s - off_s) / off_s if off_s else 0.0
    if max_overhead_ratio > 0 and overhead > max_overhead_ratio:
        raise AssertionError(
            f"observability overhead {overhead:.1%} exceeds the "
            f"{max_overhead_ratio:.0%} budget ({off_s:.3f}s off, {on_s:.3f}s on)"
        )
    rows = (
        BenchRow(
            name="detect_all_obs_disabled",
            wall_clock_s=off_s,
            ops_per_sec=n_users / off_s if off_s else 0.0,
            speedup_vs_serial=1.0,
        ),
        BenchRow(
            name="detect_all_obs_enabled",
            wall_clock_s=on_s,
            ops_per_sec=n_users / on_s if on_s else 0.0,
            speedup_vs_serial=off_s / on_s if on_s else 0.0,
        ),
    )
    rev, dirty = _stamp(git_rev)
    return BenchReport(
        benchmark="obs_overhead",
        scale=scale,
        seed=synth.seed,
        git_rev=rev,
        n_cpus=_available_cpus(),
        rows=rows,
        dirty=dirty,
        trace=trace,
    )


def write_reports(
    out_dir: Union[str, Path] = ".",
    scale: str = "bench",
    workers: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
) -> Tuple[Path, Path]:
    """Run both benchmarks and write ``BENCH_*.json`` into ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    mining = run_mining_bench(scale, repeats=repeats)
    pipeline = run_pipeline_bench(scale, workers=workers, repeats=repeats)
    return (
        mining.save(out_dir / BENCH_MINING_FILENAME),
        pipeline.save(out_dir / BENCH_PIPELINE_FILENAME),
    )
