"""``python -m repro.bench`` — refresh the BENCH_*.json perf reports."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .runner import SCALES, run_mining_bench, run_pipeline_bench


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Pinned-seed perf-regression benchmarks "
                    "(writes BENCH_mining.json / BENCH_pipeline.json)",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench",
                        help="synthetic data scale (default: bench)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory to write the reports into "
                             "(default: current directory, i.e. the repo root)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        metavar="N", help="process-backend worker counts to time")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repetitions (best-of; default 1)")
    args = parser.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    mining = run_mining_bench(args.scale, repeats=args.repeats)
    path = mining.save(args.out / "BENCH_mining.json")
    print(mining.summary())
    print(f"wrote {path}")
    pipeline = run_pipeline_bench(args.scale, workers=args.workers,
                                  repeats=args.repeats)
    path = pipeline.save(args.out / "BENCH_pipeline.json")
    print(pipeline.summary())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
