"""``python -m repro.bench`` — refresh the BENCH_*.json perf reports.

A report written from a dirty working tree times code no commit can
reproduce, so overwriting existing reports is refused (exit 2) until the
tree is committed — or the refusal is overridden with ``--force``, in
which case the report records ``dirty: true`` for honesty.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .runner import (
    BENCH_MINING_FILENAME,
    BENCH_OBS_FILENAME,
    BENCH_PIPELINE_FILENAME,
    SCALES,
    _git_state,
    run_mining_bench,
    run_obs_overhead_bench,
    run_pipeline_bench,
)
from .web import BENCH_WEB_FILENAME, run_web_bench


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Pinned-seed perf-regression benchmarks "
                    "(writes BENCH_mining.json / BENCH_pipeline.json)",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench",
                        help="synthetic data scale (default: bench)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory to write the reports into "
                             "(default: current directory, i.e. the repo root)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        metavar="N", help="process-backend worker counts to time")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repetitions (best-of; default 1)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="also time observability off vs. on and write "
                             f"{BENCH_OBS_FILENAME}")
    parser.add_argument("--web", action="store_true",
                        help="run the serving load test only and write "
                             f"{BENCH_WEB_FILENAME} (in-process server, "
                             "concurrent keep-alive clients)")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent keep-alive clients for --web "
                             "(default 4)")
    parser.add_argument("--rounds", type=int, default=5, metavar="R",
                        help="hot-phase sweeps over the schedule per client "
                             "for --web (default 5)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite existing reports even from a dirty "
                             "working tree (the report records dirty: true)")
    args = parser.parse_args(argv)

    if args.web:
        targets = [args.out / BENCH_WEB_FILENAME]
    else:
        targets = [args.out / BENCH_MINING_FILENAME,
                   args.out / BENCH_PIPELINE_FILENAME]
        if args.obs_overhead:
            targets.append(args.out / BENCH_OBS_FILENAME)
    _, dirty = _git_state()
    existing = [t for t in targets if t.exists()]
    if dirty and existing and not args.force:
        names = ", ".join(t.name for t in existing)
        print(f"refusing to overwrite {names}: the working tree is dirty, so "
              "the numbers would not match any commit.\n"
              "Commit first, or rerun with --force to record dirty: true.")
        return 2

    args.out.mkdir(parents=True, exist_ok=True)
    if args.web:
        web = run_web_bench(args.scale, clients=args.clients, rounds=args.rounds)
        path = web.save(args.out / BENCH_WEB_FILENAME)
        print(web.summary())
        print(f"wrote {path}")
        return 0
    mining = run_mining_bench(args.scale, repeats=args.repeats)
    path = mining.save(args.out / BENCH_MINING_FILENAME)
    print(mining.summary())
    print(f"wrote {path}")
    pipeline = run_pipeline_bench(args.scale, workers=args.workers,
                                  repeats=args.repeats)
    path = pipeline.save(args.out / BENCH_PIPELINE_FILENAME)
    print(pipeline.summary())
    print(f"wrote {path}")
    if args.obs_overhead:
        obs = run_obs_overhead_bench(args.scale, repeats=args.repeats)
        path = obs.save(args.out / BENCH_OBS_FILENAME)
        print(obs.summary())
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
