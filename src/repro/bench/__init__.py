"""Perf-regression harness: pinned-seed timing runs tracked across PRs.

``python -m repro.bench`` times the two hot paths this repo keeps
optimizing — the phase-2 miner (indexed vs. reference core) and the
per-user fan-out (serial vs. process backend) — on a deterministic
synthetic dataset, and writes ``BENCH_mining.json`` / ``BENCH_pipeline.json``
at the repo root so the perf trajectory is visible in version control and
CI artifacts.  ``run_obs_overhead_bench`` additionally prices the
observability layer (off vs. on).  Reports embed their run's span trees
and record working-tree dirtiness; see ``docs/performance.md`` for how to
read and refresh them.
"""

from .runner import (
    BENCH_MINING_FILENAME,
    BENCH_OBS_FILENAME,
    BENCH_PIPELINE_FILENAME,
    SCALES,
    run_interning_bench,
    run_mining_bench,
    run_obs_overhead_bench,
    run_pipeline_bench,
    write_reports,
)
from .schema import BENCH_SCHEMA_VERSION, BenchReport, BenchRow
from .web import BENCH_WEB_FILENAME, build_web_result, run_web_bench

__all__ = [
    "BENCH_MINING_FILENAME",
    "BENCH_OBS_FILENAME",
    "BENCH_PIPELINE_FILENAME",
    "BENCH_SCHEMA_VERSION",
    "BENCH_WEB_FILENAME",
    "BenchReport",
    "BenchRow",
    "SCALES",
    "build_web_result",
    "run_interning_bench",
    "run_mining_bench",
    "run_obs_overhead_bench",
    "run_pipeline_bench",
    "run_web_bench",
    "write_reports",
]
