"""The on-disk schema of ``BENCH_*.json`` perf-regression reports.

A report is one benchmark run: which benchmark, at which data scale, from
which git revision, plus one row per timed variant.  The schema is
versioned and round-trips exactly (``BenchReport.from_dict(r.to_dict()) == r``),
so future PRs can diff reports mechanically.

Schema history
--------------
* **v1** — benchmark/scale/seed/git_rev/n_cpus/rows.
* **v2** — adds ``dirty`` (was the working tree dirty when the report was
  written?) and ``trace`` (the run's exported span trees from
  :mod:`repro.obs`, empty when observability was off).  v1 payloads still
  load, with ``dirty=False`` and an empty trace.
* **v3** — rows gain optional memory measurements:
  ``peak_tracemalloc_kb`` (tracemalloc peak while the variant ran) and
  ``bytes_per_sequence`` (deep-walked resident size of the variant's data
  representation per stored sequence).  Both are omitted from the payload
  when absent, so v1/v2 payloads still load unchanged.
* **v3 (serving rows)** — the web load-test harness (``BENCH_web.json``)
  uses further optional row fields, same omit-when-absent convention:
  ``p50_s`` / ``p99_s`` (latency quantiles estimated from the
  ``repro_web_request_latency_s`` histogram buckets), ``hit_ratio``
  (cache hits over lookups during the phase), ``bytes_on_wire`` (response
  body bytes actually transferred), and ``work_units`` (real renders the
  phase forced — the wall-clock-free basis of the CI gate).  Additive and
  optional, so the schema number stays 3 and older readers still load
  every report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = ["BENCH_SCHEMA_VERSION", "BenchReport", "BenchRow"]

BENCH_SCHEMA_VERSION = 3

#: Schema versions ``from_dict`` still understands; older versions get
#: defaults for the fields they predate.
_COMPATIBLE_SCHEMAS = (1, 2, 3)


@dataclass(frozen=True)
class BenchRow:
    """One timed variant of a benchmark.

    ``ops_per_sec`` counts the benchmark's natural unit of work (mining runs
    for the miner bench, users mined for the pipeline bench) per wall-clock
    second; ``speedup_vs_serial`` is relative to the run's serial baseline
    row (the baseline itself reports 1.0).

    ``peak_tracemalloc_kb`` and ``bytes_per_sequence`` (schema v3) are
    memory measurements for variants where allocation matters — the
    interning rows record the tracemalloc peak while building the sequence
    databases and the deep-walked size of the resulting representation per
    sequence.  ``None`` (the default) means "not measured" and is omitted
    from the serialized payload.

    The serving rows (``BENCH_web.json``) additionally use ``p50_s`` /
    ``p99_s`` (request-latency quantiles from the obs histograms),
    ``hit_ratio`` (cache hits / lookups), ``bytes_on_wire`` (body bytes
    transferred) and ``work_units`` (real renders forced — the structural
    hot-vs-cold comparison the CI gate asserts instead of wall clock).
    All follow the same ``None`` = "not measured" = omitted convention.
    """

    name: str
    wall_clock_s: float
    ops_per_sec: float
    speedup_vs_serial: float
    peak_tracemalloc_kb: Optional[float] = None
    bytes_per_sequence: Optional[float] = None
    p50_s: Optional[float] = None
    p99_s: Optional[float] = None
    hit_ratio: Optional[float] = None
    bytes_on_wire: Optional[float] = None
    work_units: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a bench row needs a name")
        if self.wall_clock_s < 0 or self.ops_per_sec < 0 or self.speedup_vs_serial < 0:
            raise ValueError("bench measurements must be non-negative")
        for value in (self.peak_tracemalloc_kb, self.bytes_per_sequence,
                      self.p50_s, self.p99_s, self.bytes_on_wire,
                      self.work_units):
            if value is not None and value < 0:
                raise ValueError("bench measurements must be non-negative")
        if self.hit_ratio is not None and not (0.0 <= self.hit_ratio <= 1.0):
            raise ValueError("hit_ratio must be within [0, 1]")

    def to_dict(self) -> Dict:
        payload = {
            "name": self.name,
            "wall_clock_s": round(self.wall_clock_s, 6),
            "ops_per_sec": round(self.ops_per_sec, 4),
            "speedup_vs_serial": round(self.speedup_vs_serial, 4),
        }
        if self.peak_tracemalloc_kb is not None:
            payload["peak_tracemalloc_kb"] = round(self.peak_tracemalloc_kb, 2)
        if self.bytes_per_sequence is not None:
            payload["bytes_per_sequence"] = round(self.bytes_per_sequence, 2)
        if self.p50_s is not None:
            payload["p50_s"] = round(self.p50_s, 6)
        if self.p99_s is not None:
            payload["p99_s"] = round(self.p99_s, 6)
        if self.hit_ratio is not None:
            payload["hit_ratio"] = round(self.hit_ratio, 4)
        if self.bytes_on_wire is not None:
            payload["bytes_on_wire"] = round(self.bytes_on_wire, 1)
        if self.work_units is not None:
            payload["work_units"] = round(self.work_units, 1)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchRow":
        def opt(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        return cls(
            name=str(payload["name"]),
            wall_clock_s=float(payload["wall_clock_s"]),
            ops_per_sec=float(payload["ops_per_sec"]),
            speedup_vs_serial=float(payload["speedup_vs_serial"]),
            peak_tracemalloc_kb=opt("peak_tracemalloc_kb"),
            bytes_per_sequence=opt("bytes_per_sequence"),
            p50_s=opt("p50_s"),
            p99_s=opt("p99_s"),
            hit_ratio=opt("hit_ratio"),
            bytes_on_wire=opt("bytes_on_wire"),
            work_units=opt("work_units"),
        )


@dataclass(frozen=True)
class BenchReport:
    """One benchmark run, ready to serialize to a ``BENCH_*.json``.

    ``n_cpus`` records the CPUs actually available to the run (cgroup/affinity
    aware) — process-backend speedups are meaningless without it: on a 1-CPU
    host even a perfectly parallel fan-out cannot beat serial wall clock.

    ``dirty`` records whether the working tree had uncommitted changes:
    a dirty report times code that no commit can reproduce, so the CLI
    refuses to overwrite committed reports with one unless ``--force``-d.
    ``trace`` optionally embeds the run's exported span trees
    (:meth:`repro.obs.Tracer.export`) so a report carries its own profile.
    """

    benchmark: str
    scale: str
    seed: int
    git_rev: str
    n_cpus: int = 1
    rows: Tuple[BenchRow, ...] = field(default_factory=tuple)
    dirty: bool = False
    trace: Tuple[Dict, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))
        object.__setattr__(self, "trace", tuple(self.trace))
        if not self.benchmark:
            raise ValueError("a bench report needs a benchmark name")
        if self.n_cpus < 1:
            raise ValueError("n_cpus must be at least 1")

    def to_dict(self) -> Dict:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "seed": self.seed,
            "git_rev": self.git_rev,
            "n_cpus": self.n_cpus,
            "dirty": self.dirty,
            "rows": [row.to_dict() for row in self.rows],
            "trace": list(self.trace),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchReport":
        schema = payload.get("schema")
        if schema not in _COMPATIBLE_SCHEMAS:
            raise ValueError(
                f"unsupported bench schema {schema!r} "
                f"(expected one of {_COMPATIBLE_SCHEMAS})"
            )
        return cls(
            benchmark=str(payload["benchmark"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            git_rev=str(payload["git_rev"]),
            n_cpus=int(payload.get("n_cpus", 1)),
            rows=tuple(BenchRow.from_dict(row) for row in payload["rows"]),
            dirty=bool(payload.get("dirty", False)),
            trace=tuple(payload.get("trace", ())),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(payload)

    def row(self, name: str) -> BenchRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no bench row named {name!r}")

    def summary(self) -> str:
        dirty = ", dirty tree" if self.dirty else ""
        lines = [
            f"{self.benchmark} @ {self.scale} "
            f"(seed {self.seed}, rev {self.git_rev}, {self.n_cpus} cpu{dirty})"
        ]
        for row in self.rows:
            lines.append(
                f"  {row.name:<28} {row.wall_clock_s:>9.3f}s "
                f"{row.ops_per_sec:>10.2f} ops/s  x{row.speedup_vs_serial:.2f}"
            )
        return "\n".join(lines)
