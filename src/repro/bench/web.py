"""The serving load-test harness behind ``python -m repro.bench --web``.

Spins up :class:`~repro.web.server.CrowdWebServer` **in-process** on an
ephemeral port, drives N concurrent keep-alive clients (plain
``http.client`` over real sockets) through a mixed request schedule, and
writes a schema-v3 ``BENCH_web.json`` with one row per serving phase:

``web_cold_uncached``
    every scheduled path once against an empty cache — each request pays a
    real render (the baseline row, ``speedup_vs_serial`` = 1.0).
``web_hot_cached``
    the same key space hammered by N clients for R rounds — the dict-lookup
    hot path; its ``work_units`` (real renders) must collapse vs. cold.
``web_hot_conditional_304``
    the hot sweep revalidating with ``If-None-Match`` — all 304s, zero
    renders, (near-)zero ``bytes_on_wire``.
``web_hot_gzip``
    the hot sweep negotiating ``Accept-Encoding: gzip`` — pre-compressed
    bodies, so ``bytes_on_wire`` shrinks with no extra work.

Latency quantiles (``p50_s`` / ``p99_s``) are estimated from the
``repro_web_request_latency_s`` fixed-bucket histograms that the server
records per endpoint (each phase runs under its own scoped
:func:`repro.obs.observed` observer, so phases never blur together);
``hit_ratio`` and ``work_units`` come from the cache and render counters.
The CI gate (``scripts/bench_smoke_check.py --web``) asserts only
**structural** facts — work ratios, row presence, bytes ordering — never
wall clock, so it cannot flake on slow shared runners.
"""

from __future__ import annotations

import threading
import time
from http.client import HTTPConnection, HTTPException
from typing import Dict, Iterable, List, Optional, Tuple

from ..data import generate
from ..experiments import small_pipeline_config
from ..obs import observed
from ..pipeline import PipelineResult, run_pipeline
from ..web import CrowdWebServer
from .runner import _available_cpus, _config_for, _stamp
from .schema import BenchReport, BenchRow

__all__ = ["BENCH_WEB_FILENAME", "build_web_result", "run_web_bench"]

BENCH_WEB_FILENAME = "BENCH_web.json"

#: Seconds a client waits on one response before giving up on the run.
_CLIENT_TIMEOUT_S = 30


def build_web_result(scale: str = "smoke") -> PipelineResult:
    """The pipeline result the harness serves, pinned by the scale's seed."""
    synth = _config_for(scale)
    dataset = generate(synth).dataset
    return run_pipeline(dataset, small_pipeline_config())


def _schedule(result: PipelineResult) -> List[str]:
    """The mixed request schedule: pages, JSON aggregates, tiles, users.

    Deterministic for a given pipeline result, and a superset of what the
    tiled city page actually fetches, so the hot phase exercises exactly
    the serving surface users hit.
    """
    paths = ["/", "/users", "/api/users", "/api/stats", "/api/crowd",
             "/api/tiles", "/api/occupancy"]
    n_windows = len(result.timeline)
    busiest = sorted(
        range(n_windows),
        key=lambda i: (-result.timeline[i].n_users, i),
    )[: min(4, n_windows)]
    for window in sorted(busiest):
        paths.append(f"/api/crowd/{window}")
        paths.append(f"/city?window={window}")
        paths.append(f"/api/tiles/0/0/0?window={window}")
        for x in range(2):
            for y in range(2):
                paths.append(f"/api/tiles/1/{x}/{y}?window={window}")
    for user_id in sorted(result.profiles)[:3]:
        paths.append(f"/api/user/{user_id}")
        paths.append(f"/user/{user_id}")
    return paths


class _ClientStats:
    """What one keep-alive client measured (merged under ``_agg_lock``)."""

    __slots__ = ("requests", "body_bytes", "statuses", "etags", "error")

    def __init__(self) -> None:
        self.requests = 0
        self.body_bytes = 0
        self.statuses: Dict[int, int] = {}
        self.etags: Dict[str, str] = {}
        self.error: Optional[str] = None


def _run_client(
    address: Tuple[str, int],
    paths: List[str],
    rounds: int,
    headers: Dict[str, str],
    etags: Optional[Dict[str, str]],
    stats: _ClientStats,
) -> None:
    """One keep-alive client: ``rounds`` sweeps over ``paths``.

    ``etags`` (path → ETag), when given, turns the sweep into a
    revalidation run (``If-None-Match`` per path).  Collected response
    ETags land in ``stats.etags`` either way.
    """
    host, port = address
    conn = HTTPConnection(host, port, timeout=_CLIENT_TIMEOUT_S)
    try:
        for _ in range(rounds):
            for path in paths:
                request_headers = dict(headers)
                if etags is not None and path in etags:
                    request_headers["If-None-Match"] = etags[path]
                try:
                    conn.request("GET", path, headers=request_headers)
                    response = conn.getresponse()
                    body = response.read()
                except (HTTPException, OSError):
                    # Keep-alive hiccup: one reconnect, then give up loudly.
                    conn.close()
                    conn = HTTPConnection(host, port, timeout=_CLIENT_TIMEOUT_S)
                    conn.request("GET", path, headers=request_headers)
                    response = conn.getresponse()
                    body = response.read()
                stats.requests += 1
                stats.body_bytes += len(body)
                stats.statuses[response.status] = (
                    stats.statuses.get(response.status, 0) + 1
                )
                etag = response.getheader("ETag")
                if etag:
                    stats.etags[path] = etag
    except Exception as exc:  # noqa: BLE001 - reported by the main thread
        stats.error = f"{type(exc).__name__}: {exc}"
    finally:
        conn.close()


def _drive(
    address: Tuple[str, int],
    paths: List[str],
    n_clients: int,
    rounds: int,
    headers: Optional[Dict[str, str]] = None,
    etags: Optional[Dict[str, str]] = None,
) -> Tuple[float, List[_ClientStats]]:
    """Run one phase: ``n_clients`` concurrent sweeps; returns (wall_s, stats)."""
    all_stats = [_ClientStats() for _ in range(n_clients)]
    threads = [
        threading.Thread(
            target=_run_client,
            args=(address, paths, rounds, headers or {}, etags, stats),
            daemon=True,
        )
        for stats in all_stats
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    for stats in all_stats:
        if stats.error is not None:
            raise AssertionError(f"web bench client failed: {stats.error}")
    return wall_s, all_stats


def _quantile(histogram_series: Iterable[Dict], q: float) -> Optional[float]:
    """A quantile estimate from merged fixed-bucket histogram series.

    All series share the registry's default latency buckets, so their
    per-bin counts add directly; within the target bin the value is
    linearly interpolated between the bin's bounds (the overflow bin
    reports the merged ``max``).
    """
    buckets: Optional[List[float]] = None
    counts: Optional[List[int]] = None
    observed_max = 0.0
    total = 0
    for series in histogram_series:
        if not series:
            continue
        if buckets is None:
            buckets = list(series["buckets"])
            counts = [0] * len(series["counts"])
        for i, count in enumerate(series["counts"]):
            counts[i] += count
        total += series["count"]
        if series["max"] is not None:
            observed_max = max(observed_max, series["max"])
    if not total or buckets is None or counts is None:
        return None
    target = q * total
    seen = 0
    for i, count in enumerate(counts):
        if not count:
            continue
        if seen + count >= target:
            if i >= len(buckets):  # overflow bin
                return observed_max
            lower = buckets[i - 1] if i else 0.0
            upper = buckets[i]
            fraction = (target - seen) / count
            return lower + (upper - lower) * fraction
        seen += count
    return observed_max


def _phase_row(
    name: str,
    wall_s: float,
    all_stats: List[_ClientStats],
    registry_snapshot: Dict,
    baseline_s_per_request: Optional[float],
) -> BenchRow:
    """Fold one phase's client stats + metrics snapshot into a BenchRow."""
    n_requests = sum(stats.requests for stats in all_stats)
    body_bytes = sum(stats.body_bytes for stats in all_stats)
    counters = registry_snapshot["counters"]

    def counter(metric: str) -> float:
        return sum(counters.get(metric, {}).values())

    hits = counter("repro_web_cache_hits_total")
    misses = counter("repro_web_cache_misses_total")
    lookups = hits + misses
    latency = registry_snapshot["histograms"].get("repro_web_request_latency_s", {})
    per_request = wall_s / n_requests if n_requests else 0.0
    speedup = 1.0
    if baseline_s_per_request is not None and per_request:
        speedup = baseline_s_per_request / per_request
    return BenchRow(
        name=name,
        wall_clock_s=wall_s,
        ops_per_sec=n_requests / wall_s if wall_s else 0.0,
        speedup_vs_serial=speedup,
        p50_s=_quantile(latency.values(), 0.50),
        p99_s=_quantile(latency.values(), 0.99),
        hit_ratio=hits / lookups if lookups else None,
        bytes_on_wire=float(body_bytes),
        work_units=counter("repro_web_renders_total"),
    )


def run_web_bench(
    scale: str = "smoke",
    clients: int = 4,
    rounds: int = 5,
    git_rev: Optional[str] = None,
    result: Optional[PipelineResult] = None,
) -> BenchReport:
    """The serving load test: cold, hot, conditional, and gzip phases.

    Each phase runs under its own scoped observer, so its latency
    histograms, cache counters, and render counts are phase-exact.  The
    server (and its cache) lives across all four phases — that is the
    point: the cold phase pays every render once, the hot phases reap them.
    """
    synth = _config_for(scale)
    if result is None:
        result = build_web_result(scale)
    paths = _schedule(result)
    # Construct before start() inside the try: the constructor binds the
    # listening socket, so a start() failure must still reach stop() below
    # or the socket leaks for the rest of the process.
    server = CrowdWebServer(result, port=0)
    try:
        server.start()
        address = server.address

        with observed() as o:
            cold_s, cold_stats = _drive(address, paths, n_clients=1, rounds=1)
            cold_row = _phase_row(
                "web_cold_uncached", cold_s, cold_stats,
                o.registry.snapshot(), baseline_s_per_request=None,
            )
        cold_requests = sum(stats.requests for stats in cold_stats)
        baseline_s_per_request = cold_s / cold_requests if cold_requests else None

        with observed() as o:
            hot_s, hot_stats = _drive(address, paths, clients, rounds)
            hot_row = _phase_row(
                "web_hot_cached", hot_s, hot_stats,
                o.registry.snapshot(), baseline_s_per_request,
            )
        etags: Dict[str, str] = {}
        for stats in hot_stats:
            etags.update(stats.etags)

        with observed() as o:
            cond_s, cond_stats = _drive(
                address, paths, clients, rounds, etags=etags
            )
            cond_row = _phase_row(
                "web_hot_conditional_304", cond_s, cond_stats,
                o.registry.snapshot(), baseline_s_per_request,
            )

        with observed() as o:
            gzip_s, gzip_stats = _drive(
                address, paths, clients, rounds,
                headers={"Accept-Encoding": "gzip"},
            )
            gzip_row = _phase_row(
                "web_hot_gzip", gzip_s, gzip_stats,
                o.registry.snapshot(), baseline_s_per_request,
            )
    finally:
        server.stop()

    rev, dirty = _stamp(git_rev)
    return BenchReport(
        benchmark="web",
        scale=scale,
        seed=synth.seed,
        git_rev=rev,
        n_cpus=_available_cpus(),
        rows=(cold_row, hot_row, cond_row, gzip_row),
        dirty=dirty,
    )
