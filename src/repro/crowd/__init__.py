"""Crowd layer: synchronization, aggregation, snapshots, flows, animation."""

from .aggregate import CrowdAggregator, CrowdTimeline
from .animation import AnimatedDot, AnimationFrame, build_animation
from .anomaly import CellSpike, daily_cell_counts, detect_spikes
from .communities import (
    Community,
    build_similarity_graph,
    detect_communities,
    label_propagation,
)
from .flows import Flow, flow_matrix, timeline_flows, window_flows
from .forecast import ForecastEvaluation, evaluate_crowd_forecast, observed_occupancy
from .snapshot import CrowdGroup, CrowdSnapshot
from .sync import UserPlacement, VisitIndex, place_user, place_user_at_bins
from .windows import TimeWindow, rescale, windows_for

__all__ = [
    "AnimatedDot",
    "AnimationFrame",
    "CellSpike",
    "Community",
    "CrowdAggregator",
    "CrowdGroup",
    "CrowdSnapshot",
    "CrowdTimeline",
    "Flow",
    "ForecastEvaluation",
    "TimeWindow",
    "UserPlacement",
    "VisitIndex",
    "build_animation",
    "build_similarity_graph",
    "daily_cell_counts",
    "detect_communities",
    "detect_spikes",
    "evaluate_crowd_forecast",
    "flow_matrix",
    "observed_occupancy",
    "label_propagation",
    "place_user",
    "place_user_at_bins",
    "rescale",
    "timeline_flows",
    "window_flows",
    "windows_for",
]
