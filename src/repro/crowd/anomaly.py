"""Crowd-anomaly detection: find days when a microcell's crowd spikes.

The crowd-management motivation of the paper (refs [4], [15]): a venue
suddenly drawing far more people than its routine baseline is the event a
city operator wants flagged.  This module builds per-cell daily occupancy
series from raw check-ins and flags (day, cell) pairs whose count is a
z-score outlier against that cell's own history.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.records import CheckInDataset
from ..geo import CellIndex, MicrocellGrid

__all__ = ["CellSpike", "daily_cell_counts", "detect_spikes"]


@dataclass(frozen=True)
class CellSpike:
    """One anomalous (day, microcell) occupancy observation."""

    day: date
    cell: CellIndex
    count: int
    baseline_mean: float
    baseline_std: float
    z_score: float
    n_users: int  # distinct users behind the spike


def daily_cell_counts(
    dataset: CheckInDataset, grid: MicrocellGrid
) -> Dict[CellIndex, Dict[date, int]]:
    """Check-ins per microcell per local day."""
    counts: Dict[CellIndex, Dict[date, int]] = defaultdict(lambda: defaultdict(int))
    for record in dataset:
        cell = grid.cell_index_clamped(record.lat, record.lon)
        counts[cell][record.local_date] += 1
    return {cell: dict(days) for cell, days in counts.items()}


def detect_spikes(
    dataset: CheckInDataset,
    grid: MicrocellGrid,
    z_threshold: float = 4.0,
    min_count: int = 5,
    min_history_days: int = 7,
) -> List[CellSpike]:
    """Z-score spike detection per cell, strongest first.

    Parameters
    ----------
    z_threshold:
        Minimum standard score against the cell's *other* days.
    min_count:
        Ignore days below this absolute count (tiny cells are noisy).
    min_history_days:
        A cell needs at least this many active days to have a baseline.
    """
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")
    if min_count < 1 or min_history_days < 2:
        raise ValueError("min_count must be >= 1 and min_history_days >= 2")

    users_by_cell_day: Dict[Tuple[CellIndex, date], set] = defaultdict(set)
    for record in dataset:
        cell = grid.cell_index_clamped(record.lat, record.lon)
        users_by_cell_day[(cell, record.local_date)].add(record.user_id)

    spikes: List[CellSpike] = []
    for cell, by_day in daily_cell_counts(dataset, grid).items():
        if len(by_day) < min_history_days:
            continue
        days = sorted(by_day)
        counts = np.array([by_day[d] for d in days], dtype=float)
        for i, day in enumerate(days):
            count = counts[i]
            if count < min_count:
                continue
            # Baseline excludes the candidate day itself.
            rest = np.delete(counts, i)
            mean = float(rest.mean())
            std = float(rest.std())
            spread = max(std, 1.0)  # floor: a flat history still flags big jumps
            z = (count - mean) / spread
            if z >= z_threshold:
                spikes.append(
                    CellSpike(
                        day=day,
                        cell=cell,
                        count=int(count),
                        baseline_mean=mean,
                        baseline_std=std,
                        z_score=float(z),
                        n_users=len(users_by_cell_day[(cell, day)]),
                    )
                )
    spikes.sort(key=lambda s: (-s.z_score, s.day, s.cell))
    return spikes
