"""Crowd aggregation: the full timeline of snapshots (phase 3, step 2).

``CrowdAggregator`` wires together profiles, visit evidence, the microcell
grid, and time windows, and produces the synchronized crowd view for every
window of the day — the data behind the platform's city map and the
time slider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.records import CheckInDataset
from ..exec import ExecConfig, ordered_map
from ..geo import CellIndex, MicrocellGrid
from ..patterns import UserPatternProfile
from ..sequences import HOURLY, TimeBinning
from ..taxonomy import CategoryTree
from .snapshot import CrowdSnapshot
from .sync import UserPlacement, VisitIndex, place_user
from .windows import TimeWindow, windows_for

__all__ = ["CrowdAggregator", "CrowdTimeline"]


def _snapshot_window(window: TimeWindow, aggregator: "CrowdAggregator") -> CrowdSnapshot:
    """Module-level snapshot worker (picklable for the process backend)."""
    return aggregator.snapshot(window)


@dataclass(frozen=True)
class CrowdTimeline:
    """All snapshots of a day, in window order."""

    snapshots: Tuple[CrowdSnapshot, ...]

    def __iter__(self):
        return iter(self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, i: int) -> CrowdSnapshot:
        return self.snapshots[i]

    def at_hour(self, hour: float) -> CrowdSnapshot:
        """The snapshot whose window covers a local hour."""
        for snap in self.snapshots:
            if snap.window.start_hour <= hour < snap.window.end_hour:
                return snap
        raise ValueError(f"no window covers hour {hour}")

    def occupancy_series(self) -> List[Tuple[str, int]]:
        """(window label, crowd size) per window — the day's activity curve."""
        return [(s.window.label, s.n_users) for s in self.snapshots]

    def label_series(self, label: str) -> List[Tuple[str, int]]:
        """(window label, #users at `label` places) per window."""
        return [(s.window.label, s.label_counts().get(label, 0)) for s in self.snapshots]


class CrowdAggregator:
    """Synchronizes and aggregates all users' patterns over a city grid.

    Parameters mirror the placement knobs of :mod:`repro.crowd.sync`; the
    defaults match the paper's hourly crowd view.
    """

    def __init__(
        self,
        profiles: Mapping[str, UserPatternProfile],
        dataset: CheckInDataset,
        grid: MicrocellGrid,
        taxonomy: CategoryTree,
        binning: TimeBinning = HOURLY,
        pattern_tolerance: int = 0,
        evidence_tolerance: int = 1,
        min_support: float = 0.0,
    ) -> None:
        self.profiles = dict(profiles)
        self.grid = grid
        self.binning = binning
        self.pattern_tolerance = pattern_tolerance
        self.evidence_tolerance = evidence_tolerance
        self.min_support = min_support
        self.index = VisitIndex(dataset, grid, taxonomy, binning)

    # ------------------------------------------------------------ snapshots

    def snapshot(self, window: TimeWindow) -> CrowdSnapshot:
        """The crowd during one window.

        A user appears at most once per window: each bin of the window is
        tried in order and the first grounded placement wins (matching the
        paper's one-dot-per-user city view).
        """
        placements: List[UserPlacement] = []
        for user_id in sorted(self.profiles):
            profile = self.profiles[user_id]
            for b in window:
                placement = place_user(
                    profile,
                    self.index,
                    b,
                    self.pattern_tolerance,
                    self.evidence_tolerance,
                    self.min_support,
                )
                if placement is not None:
                    placements.append(placement)
                    break
        return CrowdSnapshot(window=window, placements=tuple(placements), grid=self.grid)

    def timeline(
        self, bins_per_window: int = 1, exec_config: ExecConfig = ExecConfig()
    ) -> CrowdTimeline:
        """Snapshots for every window of the day.

        Windows are independent of each other, so the process backend of
        ``exec_config`` renders them on worker processes (the aggregator is
        shipped to each worker once per chunk); the ordered merge keeps the
        result identical to the serial path.
        """
        windows = windows_for(self.binning, bins_per_window)
        snapshots = ordered_map(
            partial(_snapshot_window, aggregator=self), windows, exec_config,
            label="snapshot_window",
        )
        return CrowdTimeline(snapshots=tuple(snapshots))

    # ----------------------------------------------------------- aggregates

    def cell_occupancy_matrix(self, bins_per_window: int = 1) -> Dict[CellIndex, List[int]]:
        """Per-cell occupancy across all windows (cells ever occupied only).

        Cells are interned to dense column ids for the fill, so each window
        costs one pass over its *occupied* cells instead of a dict probe per
        (window × ever-occupied cell); the returned mapping is unchanged.
        """
        timeline = self.timeline(bins_per_window)
        window_counts = [snap.cell_counts() for snap in timeline]
        cells = sorted({cell for counts in window_counts for cell in counts})
        cell_id = {cell: i for i, cell in enumerate(cells)}
        columns = [[0] * len(window_counts) for _ in cells]
        for window_index, counts in enumerate(window_counts):
            for cell, count in counts.items():
                columns[cell_id[cell]][window_index] = count
        return {cell: columns[i] for i, cell in enumerate(cells)}

    def busiest_window(self) -> CrowdSnapshot:
        """The window with the largest placed crowd."""
        timeline = self.timeline()
        return max(timeline, key=lambda s: s.n_users)
