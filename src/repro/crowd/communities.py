"""Behavioural communities via label propagation (the authors' ref [7]).

The crowd view groups users by *exact* co-location; this module generalizes
to *behavioural* communities: a user-similarity graph (pattern-set Jaccard,
link strength = similarity) partitioned with a link-strength-weighted label
propagation algorithm — the approach of Lakhdari et al. (2016), which the
CrowdWeb authors cite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import networkx as nx
import numpy as np

from ..patterns import UserPatternProfile, pattern_set_similarity

__all__ = ["Community", "build_similarity_graph", "label_propagation", "detect_communities"]


@dataclass(frozen=True)
class Community:
    """One behavioural community of users."""

    community_id: int
    user_ids: Tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.user_ids)


def build_similarity_graph(
    profiles: Mapping[str, UserPatternProfile], min_similarity: float = 0.1
) -> nx.Graph:
    """Weighted user-similarity graph.

    Nodes are users; an edge exists when pattern-set Jaccard similarity
    reaches ``min_similarity``, weighted by that similarity (the "link
    strength").  Users with no qualifying link stay as isolated nodes.
    """
    if not (0.0 <= min_similarity <= 1.0):
        raise ValueError("min_similarity must be a probability")
    graph = nx.Graph()
    user_ids = sorted(profiles)
    graph.add_nodes_from(user_ids)
    for i, a in enumerate(user_ids):
        for b in user_ids[i + 1:]:
            s = pattern_set_similarity(profiles[a], profiles[b])
            if s >= min_similarity:
                graph.add_edge(a, b, weight=s)
    return graph


def label_propagation(graph: nx.Graph, max_iterations: int = 100, seed: int = 0) -> Dict[str, int]:
    """Link-strength-weighted label propagation.

    Each node starts with its own label; on every sweep (random order,
    seeded) a node adopts the label with the highest total incident edge
    weight, ties broken by the smallest label for determinism.  Converges
    when a full sweep changes nothing.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    rng = np.random.default_rng(seed)
    nodes = sorted(graph.nodes)
    labels: Dict[str, int] = {node: i for i, node in enumerate(nodes)}
    for _ in range(max_iterations):
        changed = False
        order = list(rng.permutation(len(nodes)))
        for idx in order:
            node = nodes[int(idx)]
            neighbors = graph[node]
            if not neighbors:
                continue
            strength: Dict[int, float] = {}
            for neighbor, attrs in neighbors.items():
                label = labels[neighbor]
                strength[label] = strength.get(label, 0.0) + attrs.get("weight", 1.0)
            best = min(
                (label for label in strength),
                key=lambda label: (-strength[label], label),
            )
            if best != labels[node]:
                labels[node] = best
                changed = True
        if not changed:
            break
    return labels


def detect_communities(
    profiles: Mapping[str, UserPatternProfile],
    min_similarity: float = 0.1,
    min_size: int = 1,
    seed: int = 0,
) -> List[Community]:
    """Full pipeline: similarity graph → label propagation → communities.

    Returned largest-first with contiguous ids from 0.
    """
    if min_size < 1:
        raise ValueError("min_size must be >= 1")
    graph = build_similarity_graph(profiles, min_similarity)
    labels = label_propagation(graph, seed=seed)
    by_label: Dict[int, List[str]] = {}
    for user_id, label in labels.items():
        by_label.setdefault(label, []).append(user_id)
    groups = sorted(
        (sorted(members) for members in by_label.values() if len(members) >= min_size),
        key=lambda members: (-len(members), members[0]),
    )
    return [
        Community(community_id=i, user_ids=tuple(members))
        for i, members in enumerate(groups)
    ]
