"""Crowd synchronization: from per-user patterns to who-is-where-when.

Phase 3, step 1 of the framework.  A mined pattern item says *"this user is
at an Eatery around noon"* — a category, not a location.  To place the user
in the city, we ground each pattern item in the user's own history: the
venues they actually visited with that label near that time bin vote for a
microcell, and the modal cell (and venue) becomes the user's expected
location for that bin.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..data.records import CheckInDataset
from ..geo import CellIndex, MicrocellGrid
from ..patterns import UserPatternProfile
from ..sequences import TimeBinning, HOURLY
from ..taxonomy import CategoryTree, UnknownCategoryError

__all__ = ["UserPlacement", "VisitIndex", "place_user", "place_user_at_bins"]


@dataclass(frozen=True)
class UserPlacement:
    """One user's expected presence at one time bin."""

    # Crowd timelines materialize one of these per user per window; slots
    # keep the per-record cost flat (no instance __dict__).
    __slots__ = (
        "user_id", "bin", "label", "support", "cell", "venue_id",
        "lat", "lon", "n_evidence",
    )

    user_id: str
    bin: int
    label: str
    support: float
    cell: CellIndex
    venue_id: Optional[str]
    lat: float
    lon: float
    n_evidence: int  # historical check-ins backing this placement

    # With __slots__ the default pickle path restores state via setattr,
    # which the frozen dataclass forbids; route it around the freeze.
    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


class VisitIndex:
    """Per-user historical visit evidence, indexed for placement queries.

    Conceptually every check-in is (bin, label-name-set, cell, venue,
    lat/lon), where the label set contains the venue's leaf category plus
    all its taxonomy ancestors — so a pattern item at any abstraction level
    can find its supporting visits with one membership test.

    The storage is interned: labels become bit positions (a record's name
    set is one int bitmask), microcells and venue ids become dense ints
    into shared decode tables, and each user's records live in parallel
    typed arrays.  :meth:`evidence` therefore scans ints and floats only,
    decoding cells/venues back to objects just for the hits it returns.
    """

    __slots__ = (
        "grid",
        "binning",
        "_label_bits",
        "_cells",
        "_cell_ids",
        "_venues",
        "_venue_ids",
        "_records",
    )

    def __init__(
        self,
        dataset: CheckInDataset,
        grid: MicrocellGrid,
        taxonomy: CategoryTree,
        binning: TimeBinning = HOURLY,
    ) -> None:
        self.grid = grid
        self.binning = binning
        #: label name → bit position in record masks (first-seen order;
        #: internal only, never exposed, so insertion order is fine).
        self._label_bits: Dict[str, int] = {}
        self._cells: List[CellIndex] = []
        self._cell_ids: Dict[CellIndex, int] = {}
        self._venues: List[str] = []
        self._venue_ids: Dict[str, int] = {}
        # user → (bins, label masks, cell ids, venue ids, lats, lons),
        # parallel per-record arrays in dataset order.
        self._records: Dict[str, Tuple[array, List[int], array, array, array, array]] = {}
        mask_cache: Dict[str, int] = {}
        cell_ids = self._cell_ids
        cells = self._cells
        venue_ids = self._venue_ids
        venues = self._venues
        per_user: Dict[str, Tuple[List[int], List[int], List[int], List[int], List[float], List[float]]] = {}
        for record in dataset:
            mask = mask_cache.get(record.category_name)
            if mask is None:
                names = self._label_names(taxonomy, record.category_id, record.category_name)
                mask = 0
                for name in sorted(names):
                    bit = self._label_bits.setdefault(name, len(self._label_bits))
                    mask |= 1 << bit
                mask_cache[record.category_name] = mask
            cell = grid.cell_index_clamped(record.lat, record.lon)
            cell_id = cell_ids.get(cell)
            if cell_id is None:
                cell_id = cell_ids[cell] = len(cells)
                cells.append(cell)
            venue_id = venue_ids.get(record.venue_id)
            if venue_id is None:
                venue_id = venue_ids[record.venue_id] = len(venues)
                venues.append(record.venue_id)
            columns = per_user.get(record.user_id)
            if columns is None:
                columns = per_user[record.user_id] = ([], [], [], [], [], [])
            columns[0].append(binning.bin_of(record.local_time))
            columns[1].append(mask)
            columns[2].append(cell_id)
            columns[3].append(venue_id)
            columns[4].append(record.lat)
            columns[5].append(record.lon)
        for user_id, (bins, masks, cids, vids, lats, lons) in per_user.items():
            self._records[user_id] = (
                array("i", bins),
                masks,  # Python ints: masks outgrow fixed-width typecodes
                array("i", cids),
                array("i", vids),
                array("d", lats),
                array("d", lons),
            )

    @staticmethod
    def _label_names(
        taxonomy: CategoryTree, category_id: str, category_name: str
    ) -> FrozenSet[str]:
        names = {category_name}
        try:
            node = taxonomy.resolve(category_id or category_name)
            names.add(node.name)
            names.update(a.name for a in taxonomy.ancestors(node.category_id))
        except UnknownCategoryError:
            pass
        return frozenset(names)

    def evidence(
        self, user_id: str, bin_index: int, label: str, tolerance: int = 0
    ) -> List[Tuple[CellIndex, str, float, float]]:
        """Historical visits matching (bin ± tolerance, label) for a user."""
        columns = self._records.get(user_id)
        if columns is None:
            return []
        bit = self._label_bits.get(label)
        if bit is None:
            return []  # label never observed anywhere: nothing can match
        n_bins = self.binning.n_bins
        bins, masks, cell_ids, venue_ids, lats, lons = columns
        cells = self._cells
        venues = self._venues
        hits = []
        for i, rec_bin in enumerate(bins):
            d = abs(rec_bin - bin_index)
            if min(d, n_bins - d) > tolerance:
                continue
            if (masks[i] >> bit) & 1:
                # Boundary decode: only matching records are materialized.
                hits.append((cells[cell_ids[i]], venues[venue_ids[i]], lats[i], lons[i]))
        return hits


def place_user(
    profile: UserPatternProfile,
    index: VisitIndex,
    bin_index: int,
    pattern_tolerance: int = 0,
    evidence_tolerance: int = 1,
    min_support: float = 0.0,
) -> Optional[UserPlacement]:
    """Ground a user's routine at one time bin, or ``None`` when their
    patterns say nothing about that bin.

    ``pattern_tolerance`` widens which pattern items count as active at the
    bin; ``evidence_tolerance`` widens which historical visits ground them.
    When several pattern items are active, the strongest-supported one wins;
    ties break toward more historical evidence.
    """
    best: Optional[UserPlacement] = None
    best_key: Tuple[float, int] = (-1.0, -1)
    for item, pattern in profile.items_at_bin(bin_index, pattern_tolerance):
        if pattern.support < min_support:
            continue
        evidence = index.evidence(profile.user_id, item.bin, item.label, evidence_tolerance)
        if not evidence:
            continue
        cell_votes = Counter(cell for cell, _, _, _ in evidence)
        cell, _ = cell_votes.most_common(1)[0]
        in_cell = [e for e in evidence if e[0] == cell]
        venue_votes = Counter(venue for _, venue, _, _ in in_cell)
        venue_id, _ = venue_votes.most_common(1)[0]
        sample = next(e for e in in_cell if e[1] == venue_id)
        key = (pattern.support, len(evidence))
        if key > best_key:
            best_key = key
            best = UserPlacement(
                user_id=profile.user_id,
                bin=bin_index,
                label=item.label,
                support=pattern.support,
                cell=cell,
                venue_id=venue_id,
                lat=sample[2],
                lon=sample[3],
                n_evidence=len(evidence),
            )
    return best


def place_user_at_bins(
    profile: UserPatternProfile,
    index: VisitIndex,
    bins: Sequence[int],
    pattern_tolerance: int = 0,
    evidence_tolerance: int = 1,
    min_support: float = 0.0,
) -> Dict[int, UserPlacement]:
    """Placements for every bin where the user's routine says something."""
    out: Dict[int, UserPlacement] = {}
    for b in bins:
        placement = place_user(profile, index, b, pattern_tolerance, evidence_tolerance, min_support)
        if placement is not None:
            out[b] = placement
    return out
