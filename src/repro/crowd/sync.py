"""Crowd synchronization: from per-user patterns to who-is-where-when.

Phase 3, step 1 of the framework.  A mined pattern item says *"this user is
at an Eatery around noon"* — a category, not a location.  To place the user
in the city, we ground each pattern item in the user's own history: the
venues they actually visited with that label near that time bin vote for a
microcell, and the modal cell (and venue) becomes the user's expected
location for that bin.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..data.records import CheckInDataset
from ..geo import CellIndex, MicrocellGrid
from ..patterns import UserPatternProfile
from ..sequences import TimeBinning, HOURLY
from ..taxonomy import CategoryTree, UnknownCategoryError

__all__ = ["UserPlacement", "VisitIndex", "place_user", "place_user_at_bins"]


@dataclass(frozen=True)
class UserPlacement:
    """One user's expected presence at one time bin."""

    user_id: str
    bin: int
    label: str
    support: float
    cell: CellIndex
    venue_id: Optional[str]
    lat: float
    lon: float
    n_evidence: int  # historical check-ins backing this placement


class VisitIndex:
    """Per-user historical visit evidence, indexed for placement queries.

    Every check-in is stored as (bin, label-name-set, cell, venue, lat/lon)
    where the label set contains the venue's leaf category plus all its
    taxonomy ancestors — so a pattern item at any abstraction level can find
    its supporting visits with one set lookup.
    """

    def __init__(
        self,
        dataset: CheckInDataset,
        grid: MicrocellGrid,
        taxonomy: CategoryTree,
        binning: TimeBinning = HOURLY,
    ) -> None:
        self.grid = grid
        self.binning = binning
        self._records: Dict[str, List[Tuple[int, FrozenSet[str], CellIndex, str, float, float]]] = {}
        label_cache: Dict[str, FrozenSet[str]] = {}
        for record in dataset:
            names = label_cache.get(record.category_name)
            if names is None:
                names = self._label_names(taxonomy, record.category_id, record.category_name)
                label_cache[record.category_name] = names
            entry = (
                binning.bin_of(record.local_time),
                names,
                grid.cell_index_clamped(record.lat, record.lon),
                record.venue_id,
                record.lat,
                record.lon,
            )
            self._records.setdefault(record.user_id, []).append(entry)

    @staticmethod
    def _label_names(
        taxonomy: CategoryTree, category_id: str, category_name: str
    ) -> FrozenSet[str]:
        names = {category_name}
        try:
            node = taxonomy.resolve(category_id or category_name)
            names.add(node.name)
            names.update(a.name for a in taxonomy.ancestors(node.category_id))
        except UnknownCategoryError:
            pass
        return frozenset(names)

    def evidence(
        self, user_id: str, bin_index: int, label: str, tolerance: int = 0
    ) -> List[Tuple[CellIndex, str, float, float]]:
        """Historical visits matching (bin ± tolerance, label) for a user."""
        n_bins = self.binning.n_bins
        hits = []
        for rec_bin, names, cell, venue_id, lat, lon in self._records.get(user_id, ()):
            d = abs(rec_bin - bin_index)
            if min(d, n_bins - d) > tolerance:
                continue
            if label in names:
                hits.append((cell, venue_id, lat, lon))
        return hits


def place_user(
    profile: UserPatternProfile,
    index: VisitIndex,
    bin_index: int,
    pattern_tolerance: int = 0,
    evidence_tolerance: int = 1,
    min_support: float = 0.0,
) -> Optional[UserPlacement]:
    """Ground a user's routine at one time bin, or ``None`` when their
    patterns say nothing about that bin.

    ``pattern_tolerance`` widens which pattern items count as active at the
    bin; ``evidence_tolerance`` widens which historical visits ground them.
    When several pattern items are active, the strongest-supported one wins;
    ties break toward more historical evidence.
    """
    best: Optional[UserPlacement] = None
    best_key: Tuple[float, int] = (-1.0, -1)
    for item, pattern in profile.items_at_bin(bin_index, pattern_tolerance):
        if pattern.support < min_support:
            continue
        evidence = index.evidence(profile.user_id, item.bin, item.label, evidence_tolerance)
        if not evidence:
            continue
        cell_votes = Counter(cell for cell, _, _, _ in evidence)
        cell, _ = cell_votes.most_common(1)[0]
        in_cell = [e for e in evidence if e[0] == cell]
        venue_votes = Counter(venue for _, venue, _, _ in in_cell)
        venue_id, _ = venue_votes.most_common(1)[0]
        sample = next(e for e in in_cell if e[1] == venue_id)
        key = (pattern.support, len(evidence))
        if key > best_key:
            best_key = key
            best = UserPlacement(
                user_id=profile.user_id,
                bin=bin_index,
                label=item.label,
                support=pattern.support,
                cell=cell,
                venue_id=venue_id,
                lat=sample[2],
                lon=sample[3],
                n_evidence=len(evidence),
            )
    return best


def place_user_at_bins(
    profile: UserPatternProfile,
    index: VisitIndex,
    bins: Sequence[int],
    pattern_tolerance: int = 0,
    evidence_tolerance: int = 1,
    min_support: float = 0.0,
) -> Dict[int, UserPlacement]:
    """Placements for every bin where the user's routine says something."""
    out: Dict[int, UserPlacement] = {}
    for b in bins:
        placement = place_user(profile, index, b, pattern_tolerance, evidence_tolerance, min_support)
        if placement is not None:
            out[b] = placement
    return out
