"""Crowd-movement animation frames (the paper's stated future work).

"In the future, we plan to ... automate the crowd movement animation."
This module builds that feature: a frame sequence interpolating each user's
position between consecutive window placements, ready for the SVG renderer
or the web UI to play back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .aggregate import CrowdTimeline

__all__ = ["AnimatedDot", "AnimationFrame", "build_animation"]


@dataclass(frozen=True)
class AnimatedDot:
    """One user's rendered position in one frame."""

    user_id: str
    lat: float
    lon: float
    label: str
    moving: bool


@dataclass(frozen=True)
class AnimationFrame:
    """One rendered instant: interpolation ``t`` between two windows."""

    window_label: str
    t: float  # 0.0 = at the from-window placement, 1.0 = at the to-window one
    dots: Tuple[AnimatedDot, ...]

    def to_dict(self) -> Dict:
        return {
            "window": self.window_label,
            "t": round(self.t, 4),
            "dots": [
                {
                    "user_id": d.user_id,
                    "lat": d.lat,
                    "lon": d.lon,
                    "label": d.label,
                    "moving": d.moving,
                }
                for d in self.dots
            ],
        }


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def build_animation(
    timeline: CrowdTimeline, steps_per_transition: int = 4
) -> List[AnimationFrame]:
    """Interpolated frames across the whole timeline.

    Each consecutive window pair contributes ``steps_per_transition`` frames.
    Users present in both windows glide linearly between their placements;
    users present in only one window appear static in the frames of that
    window's side.  A final resting frame shows the last window.
    """
    if steps_per_transition < 1:
        raise ValueError("steps_per_transition must be >= 1")
    snaps = list(timeline)
    frames: List[AnimationFrame] = []
    if not snaps:
        return frames

    for a, b in zip(snaps, snaps[1:]):
        at_a = {p.user_id: p for p in a.placements}
        at_b = {p.user_id: p for p in b.placements}
        for step in range(steps_per_transition):
            t = step / steps_per_transition
            dots: List[AnimatedDot] = []
            for user_id, pa in sorted(at_a.items()):
                pb = at_b.get(user_id)
                if pb is None:
                    dots.append(AnimatedDot(user_id, pa.lat, pa.lon, pa.label, moving=False))
                else:
                    moving = (pa.lat, pa.lon) != (pb.lat, pb.lon)
                    dots.append(
                        AnimatedDot(
                            user_id,
                            _lerp(pa.lat, pb.lat, t),
                            _lerp(pa.lon, pb.lon, t),
                            pb.label if t >= 0.5 else pa.label,
                            moving=moving and 0.0 < t,
                        )
                    )
            frames.append(AnimationFrame(window_label=a.window.label, t=t, dots=tuple(dots)))

    last = snaps[-1]
    frames.append(
        AnimationFrame(
            window_label=last.window.label,
            t=0.0,
            dots=tuple(
                AnimatedDot(p.user_id, p.lat, p.lon, p.label, moving=False)
                for p in sorted(last.placements, key=lambda p: p.user_id)
            ),
        )
    )
    return frames
