"""Time windows for the city-scale crowd view.

The crowd view steps through windows like "9–10 am" (Figs. 3–4).  Windows
are just labeled spans of time bins; :func:`rescale` implements the paper's
future-work feature of letting the operator scale the time frame (e.g. from
hourly to 3-hour windows) without re-mining anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..sequences import TimeBinning

__all__ = ["TimeWindow", "windows_for", "rescale"]


@dataclass(frozen=True)
class TimeWindow:
    """A half-open span of time bins ``[start_bin, end_bin)`` of a binning."""

    start_bin: int
    end_bin: int
    binning: TimeBinning

    def __post_init__(self) -> None:
        if not (0 <= self.start_bin < self.end_bin <= self.binning.n_bins):
            raise ValueError(
                f"window bins [{self.start_bin}, {self.end_bin}) out of range "
                f"for {self.binning.n_bins} bins"
            )

    @property
    def bins(self) -> range:
        return range(self.start_bin, self.end_bin)

    @property
    def start_hour(self) -> float:
        return self.binning.bounds(self.start_bin)[0]

    @property
    def end_hour(self) -> float:
        return self.binning.bounds(self.end_bin - 1)[1]

    @property
    def label(self) -> str:
        """Label like ``"09:00-10:00"``."""
        return f"{TimeBinning._fmt(self.start_hour)}-{TimeBinning._fmt(self.end_hour)}"

    def contains_bin(self, bin_index: int) -> bool:
        return self.start_bin <= bin_index < self.end_bin

    def __iter__(self) -> Iterator[int]:
        return iter(self.bins)


def windows_for(binning: TimeBinning, bins_per_window: int = 1) -> List[TimeWindow]:
    """Tile the day into consecutive windows of ``bins_per_window`` bins.

    The day must tile evenly (e.g. 24 hourly bins into 1/2/3/4/6/8/12-bin
    windows).
    """
    if bins_per_window < 1:
        raise ValueError("bins_per_window must be >= 1")
    if binning.n_bins % bins_per_window != 0:
        raise ValueError(
            f"{bins_per_window} bins per window does not tile {binning.n_bins} bins"
        )
    return [
        TimeWindow(start, start + bins_per_window, binning)
        for start in range(0, binning.n_bins, bins_per_window)
    ]


def rescale(windows: Sequence[TimeWindow], factor: int) -> List[TimeWindow]:
    """Merge consecutive windows ``factor`` at a time (the time-frame scaling
    feature).  ``len(windows)`` must be divisible by ``factor``."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if len(windows) % factor != 0:
        raise ValueError(f"cannot merge {len(windows)} windows in groups of {factor}")
    merged = []
    for i in range(0, len(windows), factor):
        group = windows[i:i + factor]
        first, last = group[0], group[-1]
        if any(a.end_bin != b.start_bin for a, b in zip(group, group[1:])):
            raise ValueError("windows must be consecutive to merge")
        merged.append(TimeWindow(first.start_bin, last.end_bin, first.binning))
    return merged
