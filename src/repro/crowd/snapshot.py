"""Crowd snapshots: the city at one time window (Figs. 3–4).

A :class:`CrowdSnapshot` answers "who is where between 9 and 10 am": every
placed user, the per-microcell occupancy, and the paper's *groups* — users
co-located in the same microcell with the same place label at the same
time.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..geo import CellIndex, MicrocellGrid
from .sync import UserPlacement
from .windows import TimeWindow

__all__ = ["CrowdGroup", "CrowdSnapshot"]


@dataclass(frozen=True)
class CrowdGroup:
    """Users categorized together: same microcell, same label, same window."""

    cell: CellIndex
    label: str
    user_ids: Tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.user_ids)


@dataclass(frozen=True)
class CrowdSnapshot:
    """The crowd at one time window."""

    window: TimeWindow
    placements: Tuple[UserPlacement, ...]
    grid: MicrocellGrid

    @property
    def n_users(self) -> int:
        return len(self.placements)

    def cell_counts(self) -> Dict[CellIndex, int]:
        """Occupancy per microcell."""
        return dict(Counter(p.cell for p in self.placements))

    def label_counts(self) -> Dict[str, int]:
        """How many users are at each kind of place."""
        return dict(Counter(p.label for p in self.placements))

    def groups(self, min_size: int = 1) -> List[CrowdGroup]:
        """Co-located same-label user groups, largest first."""
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        buckets: Dict[Tuple[CellIndex, str], List[str]] = defaultdict(list)
        for p in self.placements:
            buckets[(p.cell, p.label)].append(p.user_id)
        groups = [
            CrowdGroup(cell=cell, label=label, user_ids=tuple(sorted(users)))
            for (cell, label), users in buckets.items()
            if len(users) >= min_size
        ]
        groups.sort(key=lambda g: (-g.size, g.label, g.cell))
        return groups

    def hottest_cells(self, k: int = 5) -> List[Tuple[CellIndex, int]]:
        """The ``k`` most occupied microcells."""
        counts = self.cell_counts()
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def placement_of(self, user_id: str) -> Optional[UserPlacement]:
        for p in self.placements:
            if p.user_id == user_id:
                return p
        return None

    def to_dict(self) -> Dict:
        """JSON-ready representation for the web API."""
        return {
            "window": self.window.label,
            "start_bin": self.window.start_bin,
            "end_bin": self.window.end_bin,
            "n_users": self.n_users,
            "placements": [
                {
                    "user_id": p.user_id,
                    "label": p.label,
                    "support": round(p.support, 4),
                    "cell": list(p.cell),
                    "venue_id": p.venue_id,
                    "lat": p.lat,
                    "lon": p.lon,
                }
                for p in self.placements
            ],
            "groups": [
                {"cell": list(g.cell), "label": g.label, "users": list(g.user_ids)}
                for g in self.groups(min_size=2)
            ],
        }
