"""Crowd flows: how the crowd moves between microcells across windows.

The paper observes that "if we change the time, the crowd locations may
change to other microcells" (Fig. 3 vs Fig. 4).  Flows quantify that: an
origin–destination matrix between consecutive windows, the substrate of the
movement animation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..geo import CellIndex
from .aggregate import CrowdTimeline
from .snapshot import CrowdSnapshot

__all__ = ["Flow", "window_flows", "timeline_flows", "flow_matrix"]


@dataclass(frozen=True)
class Flow:
    """Users moving from one microcell to another between two windows."""

    origin: CellIndex
    destination: CellIndex
    user_ids: Tuple[str, ...]
    from_window: str
    to_window: str

    @property
    def size(self) -> int:
        return len(self.user_ids)

    @property
    def is_stay(self) -> bool:
        return self.origin == self.destination


def window_flows(a: CrowdSnapshot, b: CrowdSnapshot, include_stays: bool = False) -> List[Flow]:
    """Flows between two snapshots (users placed in both), largest first."""
    at_a = {p.user_id: p.cell for p in a.placements}
    moves: Dict[Tuple[CellIndex, CellIndex], List[str]] = {}
    for p in b.placements:
        origin = at_a.get(p.user_id)
        if origin is None:
            continue
        if origin == p.cell and not include_stays:
            continue
        moves.setdefault((origin, p.cell), []).append(p.user_id)
    flows = [
        Flow(
            origin=origin,
            destination=dest,
            user_ids=tuple(sorted(users)),
            from_window=a.window.label,
            to_window=b.window.label,
        )
        for (origin, dest), users in moves.items()
    ]
    flows.sort(key=lambda f: (-f.size, f.origin, f.destination))
    return flows


def timeline_flows(timeline: CrowdTimeline, include_stays: bool = False) -> List[List[Flow]]:
    """Flows between every consecutive pair of windows."""
    snaps = list(timeline)
    return [
        window_flows(a, b, include_stays) for a, b in zip(snaps, snaps[1:])
    ]


def flow_matrix(flows: Sequence[Flow]) -> Dict[CellIndex, Dict[CellIndex, int]]:
    """Nested OD counts: matrix[origin][destination] = moving users."""
    matrix: Dict[CellIndex, Dict[CellIndex, int]] = {}
    for f in flows:
        matrix.setdefault(f.origin, {})[f.destination] = (
            matrix.get(f.origin, {}).get(f.destination, 0) + f.size
        )
    return matrix
