"""Does the pattern-based crowd view *forecast* real occupancy?

The city view claims predictive meaning: users placed at a microcell for a
window should actually tend to be there on future days.  This module
scores that claim: the pattern-based placement counts per (cell, window)
are compared against the *observed* mean daily occupancy of held-out days,
with a time-blind per-cell baseline as the skill reference.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import date as date_type
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..data.records import CheckInDataset
from ..geo import CellIndex, MicrocellGrid
from ..sequences import TimeBinning
from .aggregate import CrowdAggregator

__all__ = ["ForecastEvaluation", "observed_occupancy", "evaluate_crowd_forecast"]


@dataclass(frozen=True)
class ForecastEvaluation:
    """Forecast quality over all (cell, window) pairs that ever see crowd.

    Two complementary readings:

    * ``correlation`` — Spearman rank correlation between forecast and
      observed occupancy across (cell, window) pairs: does the forecast
      order the hotspots correctly?  This is the headline metric; MAE on
      sparse occupancy rewards predicting zero everywhere.
    * ``mae_forecast`` vs ``mae_baseline`` — absolute errors against a
      time-blind per-cell baseline.
    """

    n_days: int
    n_cells: int
    mae_forecast: float
    mae_baseline: float
    correlation: float
    baseline_correlation: float
    #: Mean of actual(cell, bin) / mean_bin actual(cell, ·) over the
    #: forecast's nonzero keys.  > 1 means the pattern forecast picks
    #: above-average *hours* for the cells it targets — the timing skill a
    #: time-blind baseline cannot have by construction (its lift is 1).
    time_lift: float

    @property
    def skill(self) -> float:
        """1 − MAE_forecast / MAE_baseline; positive means the time-aware
        pattern forecast beats the time-blind per-cell average."""
        if self.mae_baseline == 0:
            return 0.0
        return 1.0 - self.mae_forecast / self.mae_baseline


def observed_occupancy(
    dataset: CheckInDataset, grid: MicrocellGrid, binning: TimeBinning
) -> Dict[Tuple[CellIndex, int], float]:
    """Mean daily distinct-user occupancy per (cell, bin).

    For each local day, each (cell, bin) counts the distinct users who
    checked in there then; values are averaged over the dataset's days.
    """
    days: Set[date_type] = set()
    per_day: Dict[Tuple[CellIndex, int, date_type], Set[str]] = defaultdict(set)
    for record in dataset:
        cell = grid.cell_index_clamped(record.lat, record.lon)
        bin_index = binning.bin_of(record.local_time)
        day = record.local_date
        days.add(day)
        per_day[(cell, bin_index, day)].add(record.user_id)
    if not days:
        return {}
    totals: Dict[Tuple[CellIndex, int], float] = defaultdict(float)
    for (cell, bin_index, _), users in per_day.items():
        totals[(cell, bin_index)] += len(users)
    n_days = len(days)
    return {key: total / n_days for key, total in totals.items()}


def evaluate_crowd_forecast(
    aggregator: CrowdAggregator,
    train: CheckInDataset,
    holdout: CheckInDataset,
    binning: TimeBinning,
) -> ForecastEvaluation:
    """Score the aggregator's placements against held-out reality.

    ``train`` is the data the profiles were mined from (the time-blind
    baseline's knowledge); ``holdout`` must contain later days — otherwise
    the score is in-sample and flattering.
    """
    grid = aggregator.grid
    actual = observed_occupancy(holdout, grid, binning)
    if not actual:
        raise ValueError("holdout dataset is empty")
    train_occupancy = observed_occupancy(train, grid, binning)

    # Pattern forecast: expected presence per (cell, bin).  A pattern with
    # support s puts the user there on a fraction s of days, so each
    # placement contributes its support — the per-day expectation — rather
    # than a full count.
    forecast: Dict[Tuple[CellIndex, int], float] = defaultdict(float)
    timeline = aggregator.timeline()
    for snap in timeline:
        for placement in snap.placements:
            forecast[(placement.cell, snap.window.start_bin)] += placement.support

    # Baseline: each cell's *training-data* day-mean occupancy spread evenly
    # over all bins (time-blind — knows where crowds went historically but
    # not when).  Built strictly from training data; no holdout leakage.
    per_cell_total: Dict[CellIndex, float] = defaultdict(float)
    for (cell, _), value in train_occupancy.items():
        per_cell_total[cell] += value
    n_bins = binning.n_bins
    baseline = {
        (cell, b): per_cell_total[cell] / n_bins
        for cell in per_cell_total
        for b in range(n_bins)
    }

    keys = sorted(set(actual) | set(forecast))
    forecast_vector = np.array([forecast.get(k, 0.0) for k in keys])
    baseline_vector = np.array([baseline.get(k, 0.0) for k in keys])
    actual_vector = np.array([actual.get(k, 0.0) for k in keys])
    errors_forecast = np.abs(forecast_vector - actual_vector)
    errors_baseline = np.abs(baseline_vector - actual_vector)
    n_days = len({c.local_date for c in holdout})

    # Timing lift: over the forecast's targeted (cell, bin) keys, how much
    # denser is the actual occupancy than that cell's own all-bin average?
    actual_cell_mean: Dict[CellIndex, float] = defaultdict(float)
    for (cell, _), value in actual.items():
        actual_cell_mean[cell] += value / n_bins
    lifts = []
    for (cell, b), value in forecast.items():
        if value <= 0:
            continue
        cell_mean = actual_cell_mean.get(cell, 0.0)
        if cell_mean > 0:
            lifts.append(actual.get((cell, b), 0.0) / cell_mean)
    time_lift = float(np.mean(lifts)) if lifts else 0.0

    return ForecastEvaluation(
        n_days=n_days,
        n_cells=len(per_cell_total),
        mae_forecast=float(errors_forecast.mean()),
        mae_baseline=float(errors_baseline.mean()),
        correlation=_spearman(forecast_vector, actual_vector),
        baseline_correlation=_spearman(baseline_vector, actual_vector),
        time_lift=time_lift,
    )


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (scipy-backed), 0.0 for degenerate input."""
    if len(a) < 3 or np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    from scipy.stats import spearmanr

    rho, _ = spearmanr(a, b)
    return float(rho) if np.isfinite(rho) else 0.0
