"""Visualization: SVG chart kit, city map, place graphs, HTML reports."""

from .animation_svg import render_animated_crowd
from .charts import BarChart, Heatmap, Histogram, LineChart, ScatterChart, nice_ticks
from .citymap import label_color_order, render_snapshot, render_venue_map
from .graphviz import render_place_graph
from .palette import (
    CATEGORICAL,
    DARK,
    GRID,
    LIGHT,
    OTHER,
    SEQUENTIAL,
    SURFACE,
    TEXT_MUTED,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    Theme,
    categorical_for,
    sequential_color,
)
from .report import HtmlReport
from .svg import SvgCanvas
from .tracemap import render_trace

__all__ = [
    "BarChart",
    "CATEGORICAL",
    "DARK",
    "GRID",
    "LIGHT",
    "Heatmap",
    "Histogram",
    "HtmlReport",
    "LineChart",
    "OTHER",
    "SEQUENTIAL",
    "SURFACE",
    "ScatterChart",
    "SvgCanvas",
    "TEXT_MUTED",
    "TEXT_PRIMARY",
    "TEXT_SECONDARY",
    "Theme",
    "categorical_for",
    "label_color_order",
    "nice_ticks",
    "render_animated_crowd",
    "render_place_graph",
    "render_snapshot",
    "render_trace",
    "render_venue_map",
    "sequential_color",
]
