"""Chart palette: validated categorical slots, sequential ramp, ink tokens.

Values are the reference data-viz palette (CVD-validated: worst adjacent
categorical ΔE 24.2 in light mode, sequential = one blue hue light→dark).
Categorical hues are assigned in **fixed slot order, never cycled**; when
more than eight categories appear, the overflow folds into the neutral
"other" color rather than inventing a ninth hue.

Dark mode is a *selected* palette — the same eight hues re-stepped for the
dark surface and validated against it, not an automatic inversion.  Use
:class:`Theme` (``LIGHT`` / ``DARK``) to parameterize renderers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "CATEGORICAL",
    "SEQUENTIAL",
    "SURFACE",
    "GRID",
    "TEXT_PRIMARY",
    "TEXT_SECONDARY",
    "TEXT_MUTED",
    "OTHER",
    "Theme",
    "LIGHT",
    "DARK",
    "categorical_for",
    "sequential_color",
]

#: Fixed-order categorical slots (light mode).
CATEGORICAL: List[str] = [
    "#2a78d6",  # 1 blue
    "#1baf7a",  # 2 aqua
    "#eda100",  # 3 yellow
    "#008300",  # 4 green
    "#4a3aa7",  # 5 violet
    "#e34948",  # 6 red
    "#e87ba4",  # 7 magenta
    "#eb6834",  # 8 orange
]

#: One-hue sequential ramp (blue, light → dark), for magnitude encodings.
SEQUENTIAL: List[str] = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
]

SURFACE = "#fcfcfb"
GRID = "#e7e6e2"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
TEXT_MUTED = "#8a897f"
#: Overflow/neutral series color (never a ninth hue).
OTHER = "#9b9a91"


#: Dark-surface steps of the same eight hues (selected for the dark band,
#: OKLCH L ≈ 0.48–0.67, ≥3:1 on #1a1a19).
CATEGORICAL_DARK: List[str] = [
    "#3987e5",  # 1 blue
    "#199e70",  # 2 aqua
    "#c98500",  # 3 yellow
    "#008300",  # 4 green
    "#9085e9",  # 5 violet
    "#e66767",  # 6 red
    "#d55181",  # 7 magenta
    "#d95926",  # 8 orange
]


@dataclass(frozen=True)
class Theme:
    """A render theme: surface, ink tokens, and the slot palette for it."""

    name: str
    surface: str
    grid: str
    text_primary: str
    text_secondary: str
    text_muted: str
    other: str
    categorical: Tuple[str, ...]
    sequential: Tuple[str, ...]

    def categorical_for(self, names: Sequence[str]) -> Dict[str, str]:
        """Fixed-slot assignment under this theme (overflow → ``other``)."""
        return {
            name: (self.categorical[i] if i < len(self.categorical) else self.other)
            for i, name in enumerate(names)
        }

    def sequential_color(self, value: float, vmin: float, vmax: float) -> str:
        ramp = self.sequential
        if vmax <= vmin:
            return ramp[len(ramp) // 2]
        f = min(1.0, max(0.0, (value - vmin) / (vmax - vmin)))
        return ramp[round(f * (len(ramp) - 1))]


LIGHT = Theme(
    name="light",
    surface=SURFACE,
    grid=GRID,
    text_primary=TEXT_PRIMARY,
    text_secondary=TEXT_SECONDARY,
    text_muted=TEXT_MUTED,
    other=OTHER,
    categorical=tuple(CATEGORICAL),
    sequential=tuple(SEQUENTIAL),
)

DARK = Theme(
    name="dark",
    surface="#1a1a19",
    grid="#383835",
    text_primary="#ffffff",
    text_secondary="#c3c2b7",
    text_muted="#8a897f",
    other="#6f6e66",
    categorical=tuple(CATEGORICAL_DARK),
    # Dark sequential: the same blue hue read dark→light so that "more"
    # stays the higher-contrast end on a dark surface.
    sequential=tuple(reversed(SEQUENTIAL)),
)


def categorical_for(names: Sequence[str]) -> Dict[str, str]:
    """Assign slot colors to category names in their given (fixed) order.

    Names beyond the eight slots all get :data:`OTHER`.  Callers must pass
    names in a *stable* order (e.g. overall frequency at first render) so a
    filter never repaints surviving series.
    """
    mapping: Dict[str, str] = {}
    for i, name in enumerate(names):
        mapping[name] = CATEGORICAL[i] if i < len(CATEGORICAL) else OTHER
    return mapping


def sequential_color(value: float, vmin: float, vmax: float) -> str:
    """Map a magnitude onto the sequential ramp (clamped)."""
    if vmax <= vmin:
        return SEQUENTIAL[len(SEQUENTIAL) // 2]
    f = (value - vmin) / (vmax - vmin)
    f = min(1.0, max(0.0, f))
    return SEQUENTIAL[round(f * (len(SEQUENTIAL) - 1))]
