"""Animated-SVG export of the crowd movement (SMIL, no JavaScript).

Renders the frame sequence of :func:`repro.crowd.build_animation` into a
single self-contained SVG whose dots glide between their per-frame
positions — openable in any browser, embeddable in the HTML report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence
from xml.sax.saxutils import escape, quoteattr

from ..crowd import AnimationFrame
from ..geo import MicrocellGrid, ScreenProjection
from .palette import OTHER, SURFACE, TEXT_MUTED, TEXT_PRIMARY, categorical_for

__all__ = ["render_animated_crowd"]


def render_animated_crowd(
    frames: Sequence[AnimationFrame],
    grid: MicrocellGrid,
    width: float = 760.0,
    height: float = 600.0,
    seconds_per_frame: float = 0.35,
    label_order: Optional[Sequence[str]] = None,
) -> str:
    """One looping animated SVG from precomputed animation frames.

    Each user becomes a ``<circle>`` with ``animate`` elements keyed on the
    frame timeline; users absent from a frame hold their last position at
    zero opacity.
    """
    if not frames:
        raise ValueError("need at least one animation frame")
    if seconds_per_frame <= 0:
        raise ValueError("seconds_per_frame must be positive")

    projection = ScreenProjection(grid.bbox, width, height - 40.0, padding_px=10.0)
    total_s = len(frames) * seconds_per_frame

    # Collect every user and their per-frame (x, y, visible, label).
    user_tracks: Dict[str, List] = {}
    for frame in frames:
        present = {d.user_id: d for d in frame.dots}
        for user_id in present:
            user_tracks.setdefault(user_id, [])
        for user_id, track in user_tracks.items():
            dot = present.get(user_id)
            if dot is not None:
                x, y = projection.to_screen(dot.lat, dot.lon)
                track.append((x, y + 30.0, 1.0, dot.label))
            elif track:
                x, y, _, label = track[-1]
                track.append((x, y, 0.0, label))
            else:
                track.append((0.0, 0.0, 0.0, ""))
    # Tracks may be ragged for users first seen mid-animation; left-pad.
    n = len(frames)
    for track in user_tracks.values():
        while len(track) < n:
            x, y, _, label = track[0]
            track.insert(0, (x, y, 0.0, label))

    labels = label_order or sorted({
        d.label for frame in frames for d in frame.dots
    })
    colors = categorical_for(list(labels))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:g}" '
        f'height="{height:g}" viewBox="0 0 {width:g} {height:g}">',
        f'<rect x="0" y="0" width="{width:g}" height="{height:g}" fill="{SURFACE}"/>',
        f'<text x="12" y="22" fill="{TEXT_PRIMARY}" font-size="14" '
        f'font-weight="600" font-family="system-ui, sans-serif">'
        f'Crowd movement ({len(frames)} frames, looping)</text>',
    ]

    key_times = ";".join(f"{i / max(1, n - 1):.4f}" for i in range(n))
    for user_id in sorted(user_tracks):
        track = user_tracks[user_id]
        xs = ";".join(f"{x:.1f}" for x, _, _, _ in track)
        ys = ";".join(f"{y:.1f}" for _, y, _, _ in track)
        opacities = ";".join(f"{o:g}" for _, _, o, _ in track)
        last_label = next((label for _, _, o, label in reversed(track) if o), "")
        color = colors.get(last_label, OTHER)
        parts.append(
            f'<circle r="5" fill={quoteattr(color)} stroke="{SURFACE}" stroke-width="2">'
            f"<title>{escape(user_id)}</title>"
            f'<animate attributeName="cx" dur="{total_s:g}s" repeatCount="indefinite" '
            f'values={quoteattr(xs)} keyTimes={quoteattr(key_times)}/>'
            f'<animate attributeName="cy" dur="{total_s:g}s" repeatCount="indefinite" '
            f'values={quoteattr(ys)} keyTimes={quoteattr(key_times)}/>'
            f'<animate attributeName="opacity" dur="{total_s:g}s" repeatCount="indefinite" '
            f'values={quoteattr(opacities)} keyTimes={quoteattr(key_times)}/>'
            f"</circle>"
        )

    # Window label ticker.
    window_labels = ";".join(frame.window_label for frame in frames)
    parts.append(
        f'<text x="{width - 12:g}" y="22" fill="{TEXT_MUTED}" font-size="12" '
        f'text-anchor="end" font-family="system-ui, sans-serif">'
        f"{escape(frames[0].window_label)} …</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
