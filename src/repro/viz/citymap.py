"""The city-scale crowd view (Figs. 3–4): microcells, venues, crowd dots.

Renders a :class:`~repro.crowd.snapshot.CrowdSnapshot` as an SVG map: the
microcell grid shaded by occupancy (sequential ramp), the crowd as dots at
their grounded venue positions colored by place label (fixed categorical
slots), and a legend of the labels present.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..crowd import CrowdSnapshot
from ..data.records import CheckInDataset
from ..geo import MicrocellGrid, ScreenProjection
from .palette import (
    GRID,
    OTHER,
    SURFACE,
    TEXT_MUTED,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    categorical_for,
    sequential_color,
)
from .svg import SvgCanvas

__all__ = ["render_snapshot", "render_venue_map", "label_color_order"]


def label_color_order(snapshots: Sequence[CrowdSnapshot]) -> List[str]:
    """Stable label order across a whole timeline (overall frequency).

    Computing the order once over *all* snapshots keeps each label's color
    fixed as the time slider moves — color follows the entity, not its rank
    in the current window.
    """
    counts: Counter = Counter()
    for snap in snapshots:
        counts.update(p.label for p in snap.placements)
    return [label for label, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]


def render_snapshot(
    snapshot: CrowdSnapshot,
    width: float = 760.0,
    height: float = 640.0,
    label_order: Optional[Sequence[str]] = None,
    show_grid: bool = True,
    title: Optional[str] = None,
) -> str:
    """One crowd snapshot as an SVG city map."""
    grid = snapshot.grid
    projection = ScreenProjection(grid.bbox, width, height - 70.0, padding_px=8.0)
    canvas = SvgCanvas(width, height, background=SURFACE)
    heading = title or f"Crowd in the smart city, {snapshot.window.label}"
    canvas.text(12, 22, heading, fill=TEXT_PRIMARY, size=14, weight="600")
    canvas.text(12, 38, f"{snapshot.n_users} users placed", fill=TEXT_MUTED, size=11)

    canvas.group(transform="translate(0 46)")
    counts = snapshot.cell_counts()
    vmax = max(counts.values()) if counts else 1
    if show_grid:
        # Occupied cells shaded by occupancy; empty cells as faint outlines.
        for cell in grid:
            x0, y0 = projection.to_screen(cell.bbox.max_lat, cell.bbox.min_lon)
            x1, y1 = projection.to_screen(cell.bbox.min_lat, cell.bbox.max_lon)
            count = counts.get(cell.index, 0)
            if count:
                canvas.rect(x0, y0, x1 - x0, y1 - y0,
                            fill=sequential_color(count, 0, vmax), opacity=0.45,
                            tooltip=f"cell {cell.cell_id}: {count} users")
            else:
                canvas.rect(x0, y0, x1 - x0, y1 - y0, fill="none", stroke=GRID,
                            stroke_width=0.5)

    order = list(label_order) if label_order is not None else label_color_order([snapshot])
    colors = categorical_for(order)
    for p in snapshot.placements:
        x, y = projection.to_screen(p.lat, p.lon)
        canvas.circle(
            x, y, 5,
            fill=colors.get(p.label, OTHER),
            stroke=SURFACE, stroke_width=2,
            tooltip=(f"{p.user_id} at {p.label} "
                     f"(support {p.support:.0%}, {p.n_evidence} visits)"),
        )
    canvas.endgroup()

    # Legend: labels present in this snapshot, in the stable order.
    present = {p.label for p in snapshot.placements}
    x = 12.0
    y = height - 14.0
    for label in order:
        if label not in present:
            continue
        canvas.circle(x + 5, y - 4, 5, fill=colors[label])
        canvas.text(x + 14, y, label, fill=TEXT_SECONDARY, size=11)
        x += 14 + 7 * len(label) + 18
    return canvas.to_string()


def render_venue_map(
    dataset: CheckInDataset,
    grid: MicrocellGrid,
    width: float = 760.0,
    height: float = 640.0,
    max_venues: int = 3000,
) -> str:
    """All venues of a dataset as a faint density backdrop map."""
    projection = ScreenProjection(grid.bbox, width, height - 40.0, padding_px=8.0)
    canvas = SvgCanvas(width, height, background=SURFACE)
    canvas.text(12, 22, f"Venues: {dataset.name}", fill=TEXT_PRIMARY, size=14, weight="600")
    canvas.group(transform="translate(0 30)")
    for cell in grid:
        x0, y0 = projection.to_screen(cell.bbox.max_lat, cell.bbox.min_lon)
        x1, y1 = projection.to_screen(cell.bbox.min_lat, cell.bbox.max_lon)
        canvas.rect(x0, y0, x1 - x0, y1 - y0, fill="none", stroke=GRID, stroke_width=0.5)
    for i, venue in enumerate(dataset.venues.values()):
        if i >= max_venues:
            break
        if not grid.bbox.contains_lat_lon(venue.lat, venue.lon):
            continue
        x, y = projection.to_screen(venue.lat, venue.lon)
        canvas.circle(x, y, 1.6, fill=TEXT_MUTED, opacity=0.5,
                      tooltip=f"{venue.name} ({venue.category_name})")
    canvas.endgroup()
    return canvas.to_string()
