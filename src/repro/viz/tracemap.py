"""GPS-trace rendering: one day of fixes, its stay points, and the path.

Completes the DBSCAN+RNN story visually: the raw trace (simplified with
Douglas–Peucker), detected stay points sized by dwell time, and optionally
the significant-place cluster centers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..geo import BoundingBox, GeoPoint, ScreenProjection, simplify_polyline
from ..sequences.staypoints import Fix, StayPoint
from .palette import CATEGORICAL, LIGHT, Theme
from .svg import SvgCanvas

__all__ = ["render_trace"]


def render_trace(
    fixes: Sequence[Fix],
    stay_points: Sequence[StayPoint] = (),
    cluster_centers: Sequence[GeoPoint] = (),
    width: float = 720.0,
    height: float = 560.0,
    simplify_tolerance_m: float = 25.0,
    title: str = "GPS trace",
    theme: Theme = LIGHT,
) -> str:
    """One trace as SVG: path, stay points (dwell-sized), cluster centers."""
    if not fixes:
        raise ValueError("need at least one fix to render")
    points = [f.point for f in fixes]
    bbox = BoundingBox.from_points(
        list(points) + [s.location for s in stay_points] + list(cluster_centers)
    ).expand(0.003)
    projection = ScreenProjection(bbox, width, height - 40.0, padding_px=12.0)
    canvas = SvgCanvas(width, height, background=theme.surface)
    canvas.text(12, 22, title, fill=theme.text_primary, size=14, weight="600")
    canvas.text(width - 12, 22, f"{len(fixes)} fixes", fill=theme.text_muted,
                size=11, anchor="end")
    canvas.group(transform="translate(0 30)")

    simplified = simplify_polyline(points, simplify_tolerance_m)
    path = [projection.to_screen(p.lat, p.lon) for p in simplified]
    if len(path) > 1:
        canvas.polyline(path, stroke=theme.grid, stroke_width=2, opacity=0.9)

    # Cluster centers (significant places) as rings underneath the stays.
    for center in cluster_centers:
        x, y = projection.to_screen(center.lat, center.lon)
        canvas.circle(x, y, 11, fill="none", stroke=theme.categorical[1],
                      stroke_width=2, opacity=0.8,
                      tooltip=f"significant place ({center.lat:.4f}, {center.lon:.4f})")

    max_dwell = max((s.duration_s for s in stay_points), default=1.0)
    for stay in stay_points:
        x, y = projection.to_screen(stay.location.lat, stay.location.lon)
        radius = 4.0 + 6.0 * (stay.duration_s / max_dwell)
        canvas.circle(
            x, y, radius, fill=theme.categorical[0], opacity=0.85,
            stroke=theme.surface, stroke_width=2,
            tooltip=(f"stay {stay.arrival:%H:%M}-{stay.departure:%H:%M} "
                     f"({stay.duration_s / 60:.0f} min, {stay.n_fixes} fixes)"),
        )

    # Start/end markers.
    sx, sy = projection.to_screen(points[0].lat, points[0].lon)
    ex, ey = projection.to_screen(points[-1].lat, points[-1].lon)
    canvas.circle(sx, sy, 4, fill=theme.categorical[3], tooltip="start")
    canvas.circle(ex, ey, 4, fill=theme.categorical[5], tooltip="end")
    canvas.endgroup()
    return canvas.to_string()
