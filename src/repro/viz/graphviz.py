"""Place-graph rendering: the individual user's "graph of visited places".

Lays out a networkx place graph with a spring embedding (seeded, so the
same profile always renders identically) and draws nodes sized by visit
count / pattern support with edges weighted by transition frequency.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import networkx as nx

from .palette import (
    CATEGORICAL,
    GRID,
    OTHER,
    SURFACE,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    categorical_for,
)
from .svg import SvgCanvas

__all__ = ["render_place_graph"]


def _node_radius(value: float, vmax: float, r_min: float = 10.0, r_max: float = 26.0) -> float:
    if vmax <= 0:
        return r_min
    return r_min + (r_max - r_min) * math.sqrt(min(1.0, value / vmax))


def render_place_graph(
    graph: nx.DiGraph,
    width: float = 720.0,
    height: float = 560.0,
    title: Optional[str] = None,
    seed: int = 42,
) -> str:
    """A user's place graph as SVG.

    Node size encodes visits (or max pattern support × 100 for pattern
    graphs); edge width encodes transition weight; node color is the place
    label's fixed categorical slot.
    """
    canvas = SvgCanvas(width, height, background=SURFACE)
    heading = title or f"Place graph — user {graph.graph.get('user_id', '?')}"
    canvas.text(12, 22, heading, fill=TEXT_PRIMARY, size=14, weight="600")
    if graph.number_of_nodes() == 0:
        canvas.text(width / 2, height / 2, "no places visited",
                    fill=TEXT_SECONDARY, size=13, anchor="middle")
        return canvas.to_string()

    positions = nx.spring_layout(graph, seed=seed, k=1.6 / max(1.0, math.sqrt(graph.number_of_nodes())))
    pad = 60.0
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    def to_screen(pos) -> Tuple[float, float]:
        fx = (pos[0] - x_lo) / ((x_hi - x_lo) or 1.0)
        fy = (pos[1] - y_lo) / ((y_hi - y_lo) or 1.0)
        return pad + fx * (width - 2 * pad), 40.0 + pad / 2 + fy * (height - 60.0 - pad)

    def node_value(attrs: Dict) -> float:
        if "visits" in attrs:
            return float(attrs["visits"])
        return float(attrs.get("support", 0.0)) * 100.0

    vmax = max((node_value(a) for _, a in graph.nodes(data=True)), default=1.0)
    w_max = max((attrs.get("weight", 1.0) for _, _, attrs in graph.edges(data=True)), default=1.0)
    colors = categorical_for(sorted(graph.nodes()))

    # Edges first (under the nodes), arrowheads as short chevrons.
    for u, v, attrs in graph.edges(data=True):
        x1, y1 = to_screen(positions[u])
        x2, y2 = to_screen(positions[v])
        weight = attrs.get("weight", 1.0)
        stroke_w = 1.0 + 3.0 * (weight / w_max)
        canvas.line(x1, y1, x2, y2, stroke=GRID, stroke_width=stroke_w, opacity=0.9)
        # Arrow chevron at 70% along the edge.
        ax = x1 + (x2 - x1) * 0.7
        ay = y1 + (y2 - y1) * 0.7
        angle = math.atan2(y2 - y1, x2 - x1)
        size = 6.0
        for da in (2.6, -2.6):
            canvas.line(ax, ay, ax - size * math.cos(angle + da),
                        ay - size * math.sin(angle + da),
                        stroke=TEXT_SECONDARY, stroke_width=1.2)

    for node, attrs in graph.nodes(data=True):
        x, y = to_screen(positions[node])
        value = node_value(attrs)
        r = _node_radius(value, vmax)
        detail = (f"{int(attrs['visits'])} visits" if "visits" in attrs
                  else f"support {attrs.get('support', 0):.0%}")
        canvas.circle(x, y, r, fill=colors.get(node, OTHER), opacity=0.9,
                      stroke=SURFACE, stroke_width=2,
                      tooltip=f"{node}: {detail}")
        canvas.text(x, y - r - 6, str(node), fill=TEXT_PRIMARY, size=11, anchor="middle")
    return canvas.to_string()
