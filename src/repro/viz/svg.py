"""A minimal SVG document builder (no dependencies).

Just enough structure for the chart kit and the city renderer: escaped
attributes, nested groups, ``<title>`` tooltips on marks, and file output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgCanvas"]

Number = Union[int, float]

# XML 1.0 forbids most C0 control characters even when escaped; strip them
# (plus surrogates and U+FFFE/U+FFFF) from any user-supplied text.
_XML_INVALID = {c for c in range(0x20) if c not in (0x09, 0x0A, 0x0D)}


def _sanitize(text: str) -> str:
    return "".join(
        ch for ch in text
        if ord(ch) not in _XML_INVALID
        and not (0xD800 <= ord(ch) <= 0xDFFF)
        and ord(ch) not in (0xFFFE, 0xFFFF)
    )


def _fmt(value: Number) -> str:
    """Compact numeric formatting: drop trailing zeros, keep 2 decimals."""
    if isinstance(value, int):
        return str(value)
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An append-only SVG document.

    Elements are added through typed helpers; ``tooltip=`` adds a ``<title>``
    child (browser-native hover text).  ``group``/``endgroup`` manage nesting.
    """

    def __init__(self, width: Number, height: Number, background: Optional[str] = None) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._parts: List[str] = []
        self._open_groups = 0
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------ plumbing

    def _attrs(self, attrs: Dict[str, Union[str, Number, None]]) -> str:
        chunks = []
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.rstrip("_").replace("_", "-")
            if isinstance(value, (int, float)):
                chunks.append(f'{name}="{_fmt(value)}"')
            else:
                chunks.append(f"{name}={quoteattr(_sanitize(str(value)))}")
        return " ".join(chunks)

    def _element(self, tag: str, attrs: Dict, tooltip: Optional[str] = None) -> None:
        rendered = self._attrs(attrs)
        if tooltip:
            self._parts.append(
                f"<{tag} {rendered}><title>{escape(_sanitize(tooltip))}</title></{tag}>"
            )
        else:
            self._parts.append(f"<{tag} {rendered}/>")

    # ------------------------------------------------------------- shapes

    def line(self, x1: Number, y1: Number, x2: Number, y2: Number, *, stroke: str,
             stroke_width: Number = 1, dash: Optional[str] = None, opacity: Optional[Number] = None) -> None:
        self._element("line", {
            "x1": x1, "y1": y1, "x2": x2, "y2": y2, "stroke": stroke,
            "stroke_width": stroke_width, "stroke_dasharray": dash, "opacity": opacity,
        })

    def rect(self, x: Number, y: Number, w: Number, h: Number, *, fill: str,
             stroke: str = "none", stroke_width: Number = 1, rx: Optional[Number] = None,
             opacity: Optional[Number] = None, tooltip: Optional[str] = None) -> None:
        self._element("rect", {
            "x": x, "y": y, "width": max(0, w), "height": max(0, h), "fill": fill,
            "stroke": stroke, "stroke_width": stroke_width, "rx": rx, "opacity": opacity,
        }, tooltip)

    def circle(self, cx: Number, cy: Number, r: Number, *, fill: str,
               stroke: str = "none", stroke_width: Number = 1,
               opacity: Optional[Number] = None, tooltip: Optional[str] = None) -> None:
        self._element("circle", {
            "cx": cx, "cy": cy, "r": r, "fill": fill, "stroke": stroke,
            "stroke_width": stroke_width, "opacity": opacity,
        }, tooltip)

    def polyline(self, points: Sequence[Tuple[Number, Number]], *, stroke: str,
                 stroke_width: Number = 2, fill: str = "none",
                 opacity: Optional[Number] = None) -> None:
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._element("polyline", {
            "points": path, "stroke": stroke, "stroke_width": stroke_width,
            "fill": fill, "opacity": opacity, "stroke_linejoin": "round",
            "stroke_linecap": "round",
        })

    def path(self, d: str, *, fill: str = "none", stroke: str = "none",
             stroke_width: Number = 1, opacity: Optional[Number] = None) -> None:
        self._element("path", {
            "d": d, "fill": fill, "stroke": stroke, "stroke_width": stroke_width,
            "opacity": opacity,
        })

    def text(self, x: Number, y: Number, content: str, *, fill: str,
             size: Number = 12, anchor: str = "start", weight: str = "normal",
             family: str = "system-ui, sans-serif", rotate: Optional[Number] = None,
             opacity: Optional[Number] = None) -> None:
        attrs = {
            "x": x, "y": y, "fill": fill, "font_size": size,
            "text_anchor": anchor, "font_weight": weight, "font_family": family,
            "opacity": opacity,
        }
        if rotate is not None:
            attrs["transform"] = f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
        rendered = self._attrs(attrs)
        self._parts.append(f"<text {rendered}>{escape(_sanitize(content))}</text>")

    # -------------------------------------------------------------- groups

    def group(self, *, opacity: Optional[Number] = None, transform: Optional[str] = None) -> None:
        rendered = self._attrs({"opacity": opacity, "transform": transform})
        self._parts.append(f"<g {rendered}>" if rendered else "<g>")
        self._open_groups += 1

    def endgroup(self) -> None:
        if self._open_groups <= 0:
            raise ValueError("endgroup() without matching group()")
        self._parts.append("</g>")
        self._open_groups -= 1

    # -------------------------------------------------------------- output

    def to_string(self) -> str:
        if self._open_groups:
            raise ValueError(f"{self._open_groups} unclosed group(s)")
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(self.width)}" '
            f'height="{_fmt(self.height)}" viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}" '
            f'role="img">\n{body}\n</svg>'
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path
