"""The SVG chart kit: line, bar, histogram, scatter, heatmap.

Shared visual grammar: recessive grid, thin marks (2px lines, ≥8px dots,
rounded bar ends), ink-colored text (never series-colored), a legend only
when there are two or more series, and categorical colors assigned in fixed
slot order.  Every mark carries a browser-native ``<title>`` tooltip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .palette import (
    CATEGORICAL,
    LIGHT,
    Theme,
)
from .svg import SvgCanvas

__all__ = ["LineChart", "BarChart", "Histogram", "ScatterChart", "Heatmap", "nice_ticks"]

_MARGIN_LEFT = 62.0
_MARGIN_RIGHT = 18.0
_MARGIN_TOP = 42.0
_MARGIN_BOTTOM = 52.0


def nice_ticks(vmin: float, vmax: float, target: int = 5) -> List[float]:
    """Round tick positions covering [vmin, vmax] on a 1-2-5 progression."""
    if target < 2:
        raise ValueError("need at least two ticks")
    if vmax < vmin:
        vmin, vmax = vmax, vmin
    span = vmax - vmin
    if span <= 0:
        # Degenerate range: pad around the single value.
        pad = abs(vmin) * 0.1 or 1.0
        vmin, vmax = vmin - pad, vmax + pad
        span = vmax - vmin
    raw_step = span / (target - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    start = math.floor(vmin / step) * step
    ticks = []
    value = start
    while value <= vmax + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


@dataclass
class _Frame:
    """The plotting area of a chart, with value↔pixel scaling."""

    width: float
    height: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    @property
    def plot_w(self) -> float:
        return self.width - _MARGIN_LEFT - _MARGIN_RIGHT

    @property
    def plot_h(self) -> float:
        return self.height - _MARGIN_TOP - _MARGIN_BOTTOM

    def px(self, x: float) -> float:
        span = self.x_max - self.x_min or 1e-12
        return _MARGIN_LEFT + (x - self.x_min) / span * self.plot_w

    def py(self, y: float) -> float:
        span = self.y_max - self.y_min or 1e-12
        return _MARGIN_TOP + (1.0 - (y - self.y_min) / span) * self.plot_h


def _fmt_val(v: float) -> str:
    if abs(v - round(v)) < 1e-9:
        return f"{int(round(v)):,}"
    return f"{v:g}"


class _ChartBase:
    """Scaffolding shared by the coordinate charts."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "",
                 width: float = 640.0, height: float = 400.0,
                 theme: Theme = LIGHT) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.theme = theme

    def _scaffold(self, canvas: SvgCanvas, frame: _Frame,
                  x_ticks: Sequence[Tuple[float, str]],
                  y_ticks: Sequence[Tuple[float, str]]) -> None:
        # Title + axis labels in ink, never series color.
        canvas.text(_MARGIN_LEFT, 24, self.title, fill=self.theme.text_primary, size=14, weight="600")
        if self.x_label:
            canvas.text(frame.px((frame.x_min + frame.x_max) / 2), self.height - 10,
                        self.x_label, fill=self.theme.text_secondary, size=12, anchor="middle")
        if self.y_label:
            canvas.text(16, _MARGIN_TOP + frame.plot_h / 2, self.y_label,
                        fill=self.theme.text_secondary, size=12, anchor="middle", rotate=-90)
        # Recessive horizontal grid + y tick labels.
        for value, label in y_ticks:
            y = frame.py(value)
            canvas.line(_MARGIN_LEFT, y, self.width - _MARGIN_RIGHT, y, stroke=self.theme.grid)
            canvas.text(_MARGIN_LEFT - 8, y + 4, label, fill=self.theme.text_secondary,
                        size=11, anchor="end")
        # Baseline + x tick labels.
        base_y = _MARGIN_TOP + frame.plot_h
        canvas.line(_MARGIN_LEFT, base_y, self.width - _MARGIN_RIGHT, base_y,
                    stroke=self.theme.text_muted)
        for value, label in x_ticks:
            x = frame.px(value)
            canvas.line(x, base_y, x, base_y + 4, stroke=self.theme.text_muted)
            canvas.text(x, base_y + 18, label, fill=self.theme.text_secondary, size=11,
                        anchor="middle")

    def _legend(self, canvas: SvgCanvas, names_colors: Sequence[Tuple[str, str]]) -> None:
        """Top-right legend row (only called for ≥2 series)."""
        x = self.width - _MARGIN_RIGHT
        for name, color in reversed(list(names_colors)):
            width_estimate = 7 * len(name) + 22
            x -= width_estimate
            canvas.rect(x, 16, 10, 10, fill=color, rx=2)
            canvas.text(x + 14, 25, name, fill=self.theme.text_secondary, size=11)


class LineChart(_ChartBase):
    """Multi-series line chart with ≥8px markers and 2px strokes."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "",
                 width: float = 640.0, height: float = 400.0,
                 y_zero: bool = True, theme: Theme = LIGHT) -> None:
        super().__init__(title, x_label, y_label, width, height, theme)
        self.y_zero = y_zero
        self._series: List[Tuple[str, List[float], List[float]]] = []

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> "LineChart":
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("a series needs at least one point")
        self._series.append((name, list(xs), list(ys)))
        return self

    def render(self) -> str:
        if not self._series:
            raise ValueError("no series added")
        all_x = [x for _, xs, _ in self._series for x in xs]
        all_y = [y for _, _, ys in self._series for y in ys]
        y_floor = min(0.0, min(all_y)) if self.y_zero else min(all_y)
        y_ticks_v = nice_ticks(y_floor, max(all_y) or 1.0)
        frame = _Frame(self.width, self.height, min(all_x), max(all_x),
                       y_ticks_v[0], y_ticks_v[-1])
        canvas = SvgCanvas(self.width, self.height, background=self.theme.surface)
        x_tick_vals = sorted(set(all_x)) if len(set(all_x)) <= 8 else nice_ticks(min(all_x), max(all_x))
        self._scaffold(
            canvas, frame,
            [(v, f"{v:g}") for v in x_tick_vals],
            [(v, _fmt_val(v)) for v in y_ticks_v],
        )
        slots = self.theme.categorical
        for i, (name, xs, ys) in enumerate(self._series):
            color = slots[i] if i < len(slots) else self.theme.other
            points = [(frame.px(x), frame.py(y)) for x, y in zip(xs, ys)]
            if len(points) > 1:
                canvas.polyline(points, stroke=color, stroke_width=2)
            for (x, y), (vx, vy) in zip(points, zip(xs, ys)):
                canvas.circle(x, y, 4, fill=color, stroke=self.theme.surface,
                              stroke_width=2, tooltip=f"{name}: ({vx:g}, {vy:g})")
        if len(self._series) >= 2:
            self._legend(canvas, [
                (name, slots[i] if i < len(slots) else self.theme.other)
                for i, (name, _, _) in enumerate(self._series)
            ])
        return canvas.to_string()


class BarChart(_ChartBase):
    """Categorical bar chart (single series), rounded data ends."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "",
                 width: float = 640.0, height: float = 400.0,
                 color: str = "", theme: Theme = LIGHT) -> None:
        super().__init__(title, x_label, y_label, width, height, theme)
        self.color = color or theme.categorical[0]
        self._categories: List[str] = []
        self._values: List[float] = []

    def add(self, category: str, value: float) -> "BarChart":
        self._categories.append(category)
        self._values.append(value)
        return self

    def add_many(self, pairs: Sequence[Tuple[str, float]]) -> "BarChart":
        for category, value in pairs:
            self.add(category, value)
        return self

    def render(self) -> str:
        if not self._values:
            raise ValueError("no bars added")
        y_ticks_v = nice_ticks(0.0, max(self._values) or 1.0)
        n = len(self._values)
        frame = _Frame(self.width, self.height, 0.0, float(n), y_ticks_v[0], y_ticks_v[-1])
        canvas = SvgCanvas(self.width, self.height, background=self.theme.surface)
        rotate = len(self._categories) > 7 or max(len(c) for c in self._categories) > 8
        self._scaffold(canvas, frame, [], [(v, _fmt_val(v)) for v in y_ticks_v])
        base_y = frame.py(max(0.0, y_ticks_v[0]))
        slot_w = frame.plot_w / n
        bar_w = max(2.0, slot_w - 2.0)  # 2px surface gap between bars
        for i, (category, value) in enumerate(zip(self._categories, self._values)):
            x = _MARGIN_LEFT + i * slot_w + (slot_w - bar_w) / 2
            y = frame.py(value)
            canvas.rect(x, min(y, base_y), bar_w, abs(base_y - y), fill=self.color,
                        rx=2, tooltip=f"{category}: {_fmt_val(value)}")
            label_x = x + bar_w / 2
            if rotate:
                canvas.text(label_x + 4, base_y + 14, category,
                            fill=self.theme.text_secondary,
                            size=10, anchor="end", rotate=-35)
            else:
                canvas.text(label_x, base_y + 18, category,
                            fill=self.theme.text_secondary,
                            size=11, anchor="middle")
        return canvas.to_string()


class Histogram(_ChartBase):
    """Distribution plot of a sample (the paper's Figs. 6 and 8)."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "count",
                 width: float = 640.0, height: float = 400.0, bins: int = 20,
                 color: str = "", theme: Theme = LIGHT) -> None:
        super().__init__(title, x_label, y_label, width, height, theme)
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.bins = bins
        self.color = color or theme.categorical[0]
        self._values: List[float] = []

    def add_values(self, values: Sequence[float]) -> "Histogram":
        self._values.extend(float(v) for v in values)
        return self

    def histogram(self) -> Tuple[List[float], List[int]]:
        """(bin_edges, counts) — exposed so tests can assert the binning."""
        if not self._values:
            raise ValueError("no values added")
        lo, hi = min(self._values), max(self._values)
        if hi == lo:
            hi = lo + 1.0
        step = (hi - lo) / self.bins
        edges = [lo + i * step for i in range(self.bins + 1)]
        counts = [0] * self.bins
        for v in self._values:
            idx = min(int((v - lo) / step), self.bins - 1)
            counts[idx] += 1
        return edges, counts

    def render(self) -> str:
        edges, counts = self.histogram()
        y_ticks_v = nice_ticks(0.0, max(counts) or 1.0)
        frame = _Frame(self.width, self.height, edges[0], edges[-1],
                       y_ticks_v[0], y_ticks_v[-1])
        canvas = SvgCanvas(self.width, self.height, background=self.theme.surface)
        x_ticks = nice_ticks(edges[0], edges[-1])
        self._scaffold(canvas, frame,
                       [(v, f"{v:g}") for v in x_ticks if edges[0] <= v <= edges[-1]],
                       [(v, _fmt_val(v)) for v in y_ticks_v])
        base_y = frame.py(0.0)
        for i, count in enumerate(counts):
            x0, x1 = frame.px(edges[i]), frame.px(edges[i + 1])
            y = frame.py(count)
            canvas.rect(x0 + 1, y, max(1.0, x1 - x0 - 2), max(0.0, base_y - y),
                        fill=self.color, rx=2,
                        tooltip=f"[{edges[i]:g}, {edges[i+1]:g}): {count}")
        canvas.text(self.width - _MARGIN_RIGHT, 24,
                    f"n={len(self._values)}", fill=self.theme.text_muted,
                    size=11, anchor="end")
        return canvas.to_string()


class ScatterChart(_ChartBase):
    """Scatter with optional per-point categories (fixed-slot colors)."""

    def __init__(self, title: str, x_label: str = "", y_label: str = "",
                 width: float = 640.0, height: float = 400.0,
                 theme: Theme = LIGHT) -> None:
        super().__init__(title, x_label, y_label, width, height, theme)
        self._points: List[Tuple[float, float, str]] = []
        self._category_order: List[str] = []

    def add_point(self, x: float, y: float, category: str = "") -> "ScatterChart":
        self._points.append((float(x), float(y), category))
        if category and category not in self._category_order:
            self._category_order.append(category)
        return self

    def render(self) -> str:
        if not self._points:
            raise ValueError("no points added")
        xs = [p[0] for p in self._points]
        ys = [p[1] for p in self._points]
        x_ticks_v = nice_ticks(min(xs), max(xs))
        y_ticks_v = nice_ticks(min(ys), max(ys))
        frame = _Frame(self.width, self.height, x_ticks_v[0], x_ticks_v[-1],
                       y_ticks_v[0], y_ticks_v[-1])
        canvas = SvgCanvas(self.width, self.height, background=self.theme.surface)
        self._scaffold(canvas, frame,
                       [(v, f"{v:g}") for v in x_ticks_v],
                       [(v, _fmt_val(v)) for v in y_ticks_v])
        colors = self.theme.categorical_for(self._category_order)
        for x, y, category in self._points:
            color = colors.get(category, self.theme.categorical[0])
            label = f"{category}: " if category else ""
            canvas.circle(frame.px(x), frame.py(y), 4, fill=color, opacity=0.85,
                          stroke=self.theme.surface, stroke_width=1,
                          tooltip=f"{label}({x:g}, {y:g})")
        if len(self._category_order) >= 2:
            self._legend(canvas, [(n, colors[n]) for n in self._category_order])
        return canvas.to_string()


class Heatmap:
    """Row×column magnitude grid on the one-hue sequential ramp."""

    def __init__(self, title: str, row_labels: Sequence[str],
                 col_labels: Sequence[str], values: Sequence[Sequence[float]],
                 width: float = 720.0, cell_h: float = 18.0,
                 x_label: str = "", y_label: str = "",
                 theme: Theme = LIGHT) -> None:
        self.theme = theme
        self.title = title
        self.row_labels = list(row_labels)
        self.col_labels = list(col_labels)
        self.values = [list(row) for row in values]
        if len(self.values) != len(self.row_labels):
            raise ValueError("values row count must match row_labels")
        for row in self.values:
            if len(row) != len(self.col_labels):
                raise ValueError("values column count must match col_labels")
        self.width = width
        self.cell_h = cell_h
        self.x_label = x_label
        self.y_label = y_label

    def render(self) -> str:
        left = 120.0
        top = 48.0
        bottom = 56.0
        n_rows, n_cols = len(self.row_labels), len(self.col_labels)
        if n_rows == 0 or n_cols == 0:
            raise ValueError("heatmap needs at least one row and one column")
        height = top + n_rows * self.cell_h + bottom
        canvas = SvgCanvas(self.width, height, background=self.theme.surface)
        canvas.text(left, 24, self.title, fill=self.theme.text_primary,
                    size=14, weight="600")
        cell_w = (self.width - left - 18.0) / n_cols
        flat = [v for row in self.values for v in row]
        vmin, vmax = min(flat), max(flat)
        for r, row_label in enumerate(self.row_labels):
            y = top + r * self.cell_h
            canvas.text(left - 8, y + self.cell_h * 0.7, row_label,
                        fill=self.theme.text_secondary, size=10, anchor="end")
            for c in range(n_cols):
                value = self.values[r][c]
                canvas.rect(left + c * cell_w + 1, y + 1, cell_w - 2, self.cell_h - 2,
                            fill=self.theme.sequential_color(value, vmin, vmax), rx=2,
                            tooltip=f"{row_label} / {self.col_labels[c]}: {value:g}")
        step = max(1, n_cols // 12)
        base_y = top + n_rows * self.cell_h
        for c in range(0, n_cols, step):
            canvas.text(left + c * cell_w + cell_w / 2, base_y + 16,
                        self.col_labels[c], fill=self.theme.text_secondary, size=10,
                        anchor="middle")
        if self.x_label:
            canvas.text(left + (self.width - left) / 2, height - 12, self.x_label,
                        fill=self.theme.text_secondary, size=12, anchor="middle")
        return canvas.to_string()
