"""HTML report assembly: stitch SVG figures and tables into one page.

Used by the CLI's ``figures`` command and the examples to emit a single
self-contained HTML file (all SVG inline, no external assets).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape

from .palette import SURFACE, TEXT_PRIMARY, TEXT_SECONDARY

__all__ = ["HtmlReport"]

_PAGE_CSS = f"""
body {{
  font-family: system-ui, -apple-system, sans-serif;
  background: {SURFACE};
  color: {TEXT_PRIMARY};
  max-width: 880px;
  margin: 2rem auto;
  padding: 0 1rem;
}}
h1 {{ font-size: 1.5rem; }}
h2 {{ font-size: 1.15rem; margin-top: 2.2rem; }}
p.caption {{ color: {TEXT_SECONDARY}; font-size: 0.9rem; margin-top: 0.3rem; }}
table {{ border-collapse: collapse; margin: 0.8rem 0; }}
th, td {{ padding: 0.3rem 0.9rem; text-align: left; font-size: 0.9rem; }}
th {{ border-bottom: 2px solid #d6d5d0; }}
td {{ border-bottom: 1px solid #e7e6e2; }}
pre {{ background: #f2f1ed; padding: 0.8rem; overflow-x: auto; font-size: 0.85rem; }}
figure {{ margin: 1rem 0; }}
"""


class HtmlReport:
    """An append-only HTML document of headings, figures, tables, and text."""

    def __init__(self, title: str, subtitle: str = "") -> None:
        self.title = title
        self.subtitle = subtitle
        self._chunks: List[str] = []

    def add_heading(self, text: str) -> "HtmlReport":
        self._chunks.append(f"<h2>{escape(text)}</h2>")
        return self

    def add_paragraph(self, text: str) -> "HtmlReport":
        self._chunks.append(f"<p>{escape(text)}</p>")
        return self

    def add_svg(self, svg: str, caption: str = "") -> "HtmlReport":
        """Embed an already-rendered SVG string (trusted content)."""
        figure = f"<figure>{svg}"
        if caption:
            figure += f'<p class="caption">{escape(caption)}</p>'
        figure += "</figure>"
        self._chunks.append(figure)
        return self

    def add_table(
        self,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        caption: str = "",
    ) -> "HtmlReport":
        parts = ["<table>"]
        parts.append("<tr>" + "".join(f"<th>{escape(str(h))}</th>" for h in headers) + "</tr>")
        for row in rows:
            parts.append("<tr>" + "".join(f"<td>{escape(str(v))}</td>" for v in row) + "</tr>")
        parts.append("</table>")
        if caption:
            parts.append(f'<p class="caption">{escape(caption)}</p>')
        self._chunks.append("".join(parts))
        return self

    def add_preformatted(self, text: str) -> "HtmlReport":
        self._chunks.append(f"<pre>{escape(text)}</pre>")
        return self

    def to_html(self) -> str:
        subtitle = f'<p class="caption">{escape(self.subtitle)}</p>' if self.subtitle else ""
        body = "\n".join(self._chunks)
        return (
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            f"<meta charset=\"utf-8\"/>\n<title>{escape(self.title)}</title>\n"
            f"<style>{_PAGE_CSS}</style>\n</head>\n<body>\n"
            f"<h1>{escape(self.title)}</h1>\n{subtitle}\n{body}\n</body>\n</html>"
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html(), encoding="utf-8")
        return path
