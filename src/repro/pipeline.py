"""The three-phase CrowdWeb pipeline (Fig. 2), end to end.

``run_pipeline`` chains the framework's phases:

1. *data acquisition & pre-processing* — densest-window selection and
   active-user filtering (:mod:`repro.data.preprocess`);
2. *individual mobility pattern detection* — modified PrefixSpan per user
   (:mod:`repro.patterns`);
3. *crowd synchronization & aggregation* — placement, snapshots, timeline
   (:mod:`repro.crowd`).

The returned :class:`PipelineResult` is what the web platform, the CLI and
the figure benchmarks all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .crowd import CrowdAggregator, CrowdTimeline
from .data import ActiveUserFilter, CheckInDataset, PreprocessReport, preprocess
from .exec import ExecConfig
from .geo import MicrocellGrid
from .mining import ModifiedPrefixSpanConfig
from .obs import enable as obs_enable, get_observer
from .patterns import UserPatternProfile, detect_all_patterns
from .sequences import HOURLY, TimeBinning
from .taxonomy import AbstractionLevel, CategoryTree, build_default_taxonomy

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Every knob of the end-to-end pipeline, with paper defaults."""

    window_months: int = 3
    activity: ActiveUserFilter = field(default_factory=ActiveUserFilter)
    level: AbstractionLevel = AbstractionLevel.ROOT
    binning: TimeBinning = field(default_factory=lambda: HOURLY)
    mining: ModifiedPrefixSpanConfig = field(default_factory=ModifiedPrefixSpanConfig)
    closed_only: bool = True
    #: Mine all days, or condition the routines on "weekday"/"weekend".
    day_kind: str = "all"
    cell_size_m: float = 750.0
    pattern_tolerance: int = 0
    evidence_tolerance: int = 1
    #: Skip preprocessing entirely (for already-filtered datasets).
    skip_preprocess: bool = False
    #: Execution backend for per-user mining and per-window aggregation
    #: (serial by default; ``ExecConfig.from_workers(n)`` fans out over
    #: ``n`` worker processes with identical output).
    exec: ExecConfig = field(default_factory=ExecConfig)
    #: Turn on observability (:mod:`repro.obs`) for this run: one trace
    #: span per phase plus pipeline metrics, readable afterwards via
    #: ``repro.obs.get_observer()``.  Enabling is process-global and
    #: sticky (``repro.obs.disable()`` resets); when ``False`` — the
    #: default — the run joins an already-enabled observer but never
    #: creates one, and with observability fully off the pipeline output
    #: is byte-identical to the uninstrumented code path.
    obs: bool = False


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    dataset: CheckInDataset  # the filtered dataset the later phases used
    report: Optional[PreprocessReport]
    profiles: Dict[str, UserPatternProfile]
    grid: MicrocellGrid
    aggregator: CrowdAggregator
    timeline: CrowdTimeline
    taxonomy: CategoryTree
    config: PipelineConfig

    @property
    def n_users(self) -> int:
        return len(self.profiles)

    def profile(self, user_id: str) -> UserPatternProfile:
        try:
            return self.profiles[user_id]
        except KeyError:
            raise KeyError(f"user {user_id!r} not in pipeline output "
                           f"(did the activity filter drop them?)") from None


def run_pipeline(
    dataset: CheckInDataset,
    config: PipelineConfig = PipelineConfig(),
    taxonomy: Optional[CategoryTree] = None,
) -> PipelineResult:
    """Run all three phases on a dataset and return the bundled result."""
    taxonomy = taxonomy or build_default_taxonomy()
    if config.obs:
        obs_enable()
    o = get_observer()

    with o.span("pipeline.run", n_records=len(dataset), n_users=dataset.n_users):
        o.inc("repro_pipeline_runs_total")

        # Phase 1 — data acquisition & pre-processing.
        with o.span("pipeline.preprocess") as phase:
            if config.skip_preprocess:
                filtered, report = dataset, None
            else:
                filtered, report = preprocess(
                    dataset, config.window_months, config.activity
                )
            if len(filtered) == 0:
                raise ValueError(
                    "preprocessing removed every record; relax the activity criteria "
                    f"(kept {filtered.n_users} users from {dataset.n_users})"
                )
            phase.set("n_records_kept", len(filtered))
            phase.set("n_users_kept", filtered.n_users)

        # Phase 2 — individual mobility pattern detection.
        with o.span("pipeline.detect") as phase:
            profiles = detect_all_patterns(
                filtered,
                taxonomy,
                level=config.level,
                binning=config.binning,
                config=config.mining,
                closed_only=config.closed_only,
                day_kind=config.day_kind,
                exec_config=config.exec,
            )
            phase.set("n_users", len(profiles))
            phase.set("n_patterns", sum(p.n_patterns for p in profiles.values()))

        # Phase 3 — crowd synchronization & aggregation.
        with o.span("pipeline.aggregate") as phase:
            grid = MicrocellGrid(
                filtered.bounding_box().expand(0.002), config.cell_size_m
            )
            aggregator = CrowdAggregator(
                profiles,
                filtered,
                grid,
                taxonomy,
                binning=config.binning,
                pattern_tolerance=config.pattern_tolerance,
                evidence_tolerance=config.evidence_tolerance,
            )
            timeline = aggregator.timeline(exec_config=config.exec)
            phase.set("n_windows", len(timeline))

    return PipelineResult(
        dataset=filtered,
        report=report,
        profiles=profiles,
        grid=grid,
        aggregator=aggregator,
        timeline=timeline,
        taxonomy=taxonomy,
        config=config,
    )
