"""Human-readable rendering of trace trees and metric snapshots.

Both renderers consume the *plain-dict* export formats
(:meth:`repro.obs.trace.Tracer.export`,
:meth:`repro.obs.registry.MetricsRegistry.snapshot`), not live objects, so
``python -m repro.obs`` can render a dump written by an earlier process.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["render_metrics", "render_trace_tree"]


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_attrs(attrs: Mapping) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return "  {" + inner + "}"


def _render_span(span: Mapping, prefix: str, is_last: bool, lines: List[str]) -> None:
    connector = "" if not prefix and is_last else ("└─ " if is_last else "├─ ")
    head = f"{prefix}{connector}{span['name']}"
    timing = f"{_fmt_duration(span.get('wall_s', 0.0))} (cpu {_fmt_duration(span.get('cpu_s', 0.0))})"
    status = span.get("status", "ok")
    flag = "" if status == "ok" else f"  [{status}]"
    lines.append(f"{head:<44} {timing}{flag}{_fmt_attrs(span.get('attrs', {}))}")
    children = span.get("children", [])
    child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(children):
        _render_span(child, child_prefix, i == len(children) - 1, lines)
    dropped = span.get("n_dropped_children", 0)
    if dropped:
        lines.append(f"{child_prefix}… {dropped} more child span(s) not retained")


def render_trace_tree(roots: Sequence[Mapping]) -> str:
    """Render exported root spans as an indented tree, oldest first.

    Each line shows the span name, wall-clock and CPU duration, a status
    flag when the span ended in an exception, and its attributes.
    """
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in roots:
        _render_span(root, "", True, lines)
    return "\n".join(lines)


def render_metrics(snapshot: Mapping) -> str:
    """Render a registry snapshot: counters, gauges, then histograms."""
    counters: Dict = snapshot.get("counters", {})
    gauges: Dict = snapshot.get("gauges", {})
    histograms: Dict = snapshot.get("histograms", {})
    if not (counters or gauges or histograms):
        return "(no metrics recorded)"

    lines: List[str] = []

    def series_lines(kind: str, table: Dict, fmt) -> None:
        if not table:
            return
        lines.append(f"{kind}:")
        for name in sorted(table):
            for label in sorted(table[name]):
                series = name + (f"{{{label}}}" if label else "")
                lines.append(f"  {series:<52} {fmt(table[name][label])}")

    series_lines("counters", counters, lambda v: f"{v:g}")
    series_lines("gauges", gauges, lambda v: f"{v:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            for label in sorted(histograms[name]):
                data = histograms[name][label]
                series = name + (f"{{{label}}}" if label else "")
                count = data.get("count", 0)
                mean = (data.get("sum", 0.0) / count) if count else 0.0
                lines.append(
                    f"  {series:<52} n={count} mean={mean:.6g} "
                    f"min={data.get('min')} max={data.get('max')}"
                )
    return "\n".join(lines)
