"""The process-global observability runtime.

One :class:`Observer` bundles a :class:`~repro.obs.registry.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer` behind a single ``enabled`` switch.
Instrumented hot paths fetch the active observer with :func:`get_observer`
and call ``span`` / ``inc`` / ``observe`` / ``set_gauge`` on it; when
observability is off (the default), the active observer is the shared
:data:`NULL_OBSERVER`, whose methods return immediately without touching the
registry or tracer — the disabled path allocates nothing and its overhead is
one attribute check per call site.

* :func:`enable` installs a live observer process-wide (idempotent — an
  already-live observer is kept, so nested enables share one trace).
* :func:`disable` restores the null observer.
* :func:`observed` is the scoped variant for tests and harnesses: a fresh
  live observer for the duration of the ``with`` block, the previous one
  restored after.

A run's final state can be written to a JSON dump (:func:`save_dump`) that
``python -m repro.obs`` pretty-prints later; the CLI's ``--trace`` flag does
exactly that.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from .registry import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry, NullRegistry
from .trace import Tracer

__all__ = [
    "DUMP_PATH_ENV",
    "DEFAULT_DUMP_FILENAME",
    "NULL_OBSERVER",
    "Observer",
    "default_dump_path",
    "disable",
    "enable",
    "get_observer",
    "load_dump",
    "observed",
    "save_dump",
    "set_observer",
    "span",
]

#: Environment variable overriding where ``--trace`` dumps are written/read.
DUMP_PATH_ENV = "CROWDWEB_OBS_DUMP"
DEFAULT_DUMP_FILENAME = ".crowdweb-obs.json"


class _NullSpan:
    """The reusable do-nothing span of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Observer:
    """A registry + tracer pair behind one ``enabled`` switch.

    When ``enabled`` is false every method returns immediately — the
    registry and tracer are never consulted, which is what makes a
    *sentinel* registry assertable in tests: install one on a disabled
    observer and any recorded metric is a bug.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------- instrumentation

    def span(self, name: str, **attrs):
        """A context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def inc(self, name: str, value: float = 1, label: str = "") -> None:
        if self.enabled:
            self.registry.inc(name, value, label)

    def set_gauge(self, name: str, value: float, label: str = "") -> None:
        if self.enabled:
            self.registry.set_gauge(name, value, label)

    def observe(
        self,
        name: str,
        value: float,
        label: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        if self.enabled:
            self.registry.observe(name, value, label, buckets)

    # --------------------------------------------------------------- export

    def metrics_payload(self) -> Dict:
        """The ``GET /metrics`` JSON payload."""
        payload: Dict = {"enabled": self.enabled}
        payload.update(self.registry.snapshot())
        return payload

    def export_state(self) -> Dict:
        """Everything the observer holds, as one JSON-ready dict."""
        return {
            "enabled": self.enabled,
            "exported_unix_s": round(time.time(), 3),
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.export(),
        }


#: The shared disabled observer — the default active observer.
NULL_OBSERVER = Observer(enabled=False, registry=NullRegistry(), tracer=Tracer())

_active: Observer = NULL_OBSERVER

#: Guards every install/uninstall of the process-global observer.  Reads
#: (``get_observer``, ``span``) stay lock-free on purpose: publishing a
#: fully-constructed Observer through one reference assignment is safe, and
#: the read is on every instrumented hot path.  Pool workers re-import this
#: module and get a fresh, unshared lock — intended, the observer install is
#: per-process state.
_INSTALL_LOCK = threading.Lock()  # crowdlint: disable=CW302 -- per-process install lock; fork-fresh copies are the point


def get_observer() -> Observer:
    """The currently active observer (the null observer when disabled)."""
    return _active


def set_observer(observer: Observer) -> Observer:
    """Install ``observer`` process-wide; returns the previous one."""
    global _active
    with _INSTALL_LOCK:
        previous = _active
        _active = observer
        return previous


def enable(
    registry: Optional[MetricsRegistry] = None, tracer: Optional[Tracer] = None
) -> Observer:
    """Turn observability on process-wide and return the live observer.

    Idempotent: if a live observer is already installed it is returned
    unchanged (so ``PipelineConfig.obs`` inside an ``observed()`` block
    joins the surrounding trace instead of clobbering it).
    """
    global _active
    with _INSTALL_LOCK:
        if not _active.enabled:
            _active = Observer(enabled=True, registry=registry, tracer=tracer)
        return _active


def disable() -> None:
    """Turn observability off process-wide (drops the live observer)."""
    global _active
    with _INSTALL_LOCK:
        _active = NULL_OBSERVER


@contextmanager
def observed(
    registry: Optional[MetricsRegistry] = None, tracer: Optional[Tracer] = None
) -> Iterator[Observer]:
    """Scoped observability: a fresh live observer inside the ``with`` block.

    The previously active observer (usually the null one) is restored on
    exit, so tests cannot leak instrumentation into each other.
    """
    observer = Observer(enabled=True, registry=registry, tracer=tracer)
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


def span(name: str, **attrs):
    """Module-level convenience: a span on the active observer."""
    return _active.span(name, **attrs)


# ------------------------------------------------------------------- dumps


def default_dump_path() -> Path:
    """Where ``--trace`` dumps go: ``$CROWDWEB_OBS_DUMP`` or the cwd file."""
    override = os.environ.get(DUMP_PATH_ENV)
    return Path(override) if override else Path(DEFAULT_DUMP_FILENAME)


def save_dump(
    observer: Optional[Observer] = None, path: Union[str, Path, None] = None
) -> Path:
    """Write an observer's full state as JSON; returns the path written."""
    observer = observer if observer is not None else _active
    path = Path(path) if path is not None else default_dump_path()
    path.write_text(
        json.dumps(observer.export_state(), indent=1, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def load_dump(path: Union[str, Path, None] = None) -> Dict:
    """Read a dump written by :func:`save_dump`."""
    path = Path(path) if path is not None else default_dump_path()
    return json.loads(path.read_text(encoding="utf-8"))
