"""``python -m repro.obs`` — inspect the last observability dump.

With no arguments, reads the dump written by a ``--trace`` run (default
``.crowdweb-obs.json``, overridable via ``$CROWDWEB_OBS_DUMP`` or
``--path``) and pretty-prints the trace tree plus the metrics snapshot.
``--selftest`` exercises the whole subsystem in-process instead — CI runs it
as a cheap end-to-end check of spans, metrics, rendering, and dumps.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path
from typing import List, Optional

from .render import render_metrics, render_trace_tree
from .runtime import default_dump_path, load_dump, observed, save_dump


def selftest() -> int:
    """End-to-end exercise of spans, metrics, rendering, and dump I/O."""
    with observed() as o:
        with o.span("selftest.root", stage="outer") as root:
            with o.span("selftest.child"):
                o.inc("repro_obs_selftest_total", 2)
                o.set_gauge("repro_obs_selftest_level_ratio", 1.5)
                o.observe("repro_obs_selftest_latency_s", 0.003, label="child")
            root.set("checked", True)
        with tempfile.TemporaryDirectory() as tmp:
            dump_path = save_dump(o, Path(tmp) / "selftest.json")
            state = load_dump(dump_path)

    roots = state["trace"]
    assert len(roots) == 1, f"expected 1 root span, got {len(roots)}"
    root_span = roots[0]
    assert root_span["name"] == "selftest.root"
    assert root_span["attrs"] == {"stage": "outer", "checked": True}
    children = root_span.get("children", [])
    assert [c["name"] for c in children] == ["selftest.child"]
    assert root_span["wall_s"] >= children[0]["wall_s"] >= 0.0

    metrics = state["metrics"]
    assert metrics["counters"]["repro_obs_selftest_total"][""] == 2
    assert metrics["gauges"]["repro_obs_selftest_level_ratio"][""] == 1.5
    histogram = metrics["histograms"]["repro_obs_selftest_latency_s"]["child"]
    assert histogram["count"] == 1 and sum(histogram["counts"]) == 1

    tree = render_trace_tree(roots)
    assert "selftest.root" in tree and "selftest.child" in tree
    table = render_metrics(metrics)
    assert "repro_obs_selftest_total" in table

    print("obs selftest ok: 1 trace tree, 3 metric series, dump round-trip")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print the last observability dump "
                    "(trace tree + metrics snapshot)",
    )
    parser.add_argument("--path", type=Path, default=None,
                        help="dump file to read (default: $CROWDWEB_OBS_DUMP "
                             "or ./.crowdweb-obs.json)")
    parser.add_argument("--json", action="store_true",
                        help="print the raw dump JSON instead of rendering")
    parser.add_argument("--selftest", action="store_true",
                        help="exercise the observability subsystem and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()

    path = args.path if args.path is not None else default_dump_path()
    if not path.exists():
        print(f"no observability dump at {path} — run a command with --trace "
              f"first (e.g. `crowdweb crowd data.csv --trace`)")
        return 1
    state = load_dump(path)
    if args.json:
        print(json.dumps(state, indent=1))
        return 0
    print(f"observability dump: {path}")
    print()
    print("trace:")
    print(render_trace_tree(state.get("trace", [])))
    print()
    print("metrics:")
    print(render_metrics(state.get("metrics", {})))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
