"""The tracing side of the observability layer: nested wall/CPU spans.

A :class:`Span` is one timed region — name, attributes, wall-clock and CPU
duration, children.  A :class:`Tracer` hands out spans as context managers,
nests them via a thread-local stack (so the threaded web server traces each
request independently), and keeps **completed root spans** in a bounded ring
buffer: tracing a long-lived server cannot grow memory without bound.

Two explicit bounds keep traces small:

* at most ``max_roots`` completed root spans are retained (oldest dropped);
* each span keeps at most ``max_children`` children; extra completions are
  counted in ``n_dropped_children`` instead of being attached.

Spans export to plain dicts (``to_dict`` / ``Tracer.export``) — the format
the bench reports embed and ``python -m repro.obs`` pretty-prints.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["Span", "Tracer"]

#: Default retention bounds (see the module docstring).
DEFAULT_MAX_ROOTS = 64
DEFAULT_MAX_CHILDREN = 128


class Span:
    """One timed region of the program, possibly with nested children."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "status",
        "n_dropped_children",
        "started_unix_s",
        "wall_s",
        "cpu_s",
        "_wall0",
        "_cpu0",
    )

    def __init__(self, name: str, attrs: Optional[Dict] = None) -> None:
        self.name = name
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.status = "ok"
        self.n_dropped_children = 0
        self.started_unix_s = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[key] = value

    def _start(self) -> None:
        self.started_unix_s = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def _finish(self, status: str) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self.status = status

    def to_dict(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "started_unix_s": round(self.started_unix_s, 3),
            "status": self.status,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        if self.n_dropped_children:
            payload["n_dropped_children"] = self.n_dropped_children
        return payload


class _ActiveSpan:
    """Context manager driving one span through the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span._start()
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        self._span._finish(status)
        self._tracer._complete(self._span)
        return False  # never suppress the exception


class Tracer:
    """Hands out nested spans and retains completed roots in a ring buffer."""

    def __init__(
        self,
        max_roots: int = DEFAULT_MAX_ROOTS,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> None:
        if max_roots < 1 or max_children < 0:
            raise ValueError("max_roots must be >= 1 and max_children >= 0")
        self.max_children = max_children
        self._roots: Deque[Span] = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """A context manager timing one region; yields the :class:`Span`."""
        return _ActiveSpan(self, Span(name, attrs))

    def _complete(self, span: Span) -> None:
        stack = self._stack()
        # The finished span is the top of this thread's stack by
        # construction (context managers unwind LIFO).
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            parent = stack[-1]
            if len(parent.children) < self.max_children:
                parent.children.append(span)
            else:
                parent.n_dropped_children += 1
        else:
            with self._lock:
                self._roots.append(span)

    def roots(self) -> List[Span]:
        """Completed root spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Optional[Span]:
        """The most recently completed root span, if any."""
        with self._lock:
            return self._roots[-1] if self._roots else None

    def export(self) -> List[Dict]:
        """Every retained root span as a plain dict tree."""
        return [span.to_dict() for span in self.roots()]

    def reset(self) -> None:
        """Drop all retained root spans (in-flight spans are unaffected)."""
        with self._lock:
            self._roots.clear()
