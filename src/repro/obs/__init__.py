"""Observability: tracing spans, a metrics registry, and their runtime.

The package is dependency-free and imports nothing else from ``repro`` — it
sits at the foundation of the layer map so every hot path (mining, exec,
pipeline, web) can instrument itself against the process-global
:class:`Observer` without inverting the architecture.

Instrumentation is **opt-in and zero-cost when off**: the default active
observer is a shared null object whose methods return immediately.  Turn it
on with :func:`enable` (process-wide), :func:`observed` (scoped), the
``PipelineConfig.obs`` flag, or the CLI's ``--trace``.  See
``docs/observability.md`` for the span model and metric naming conventions.

Quick taste::

    from repro.obs import observed, render_trace_tree

    with observed() as o:
        with o.span("demo.outer", n_items=3):
            with o.span("demo.inner"):
                ...
    print(render_trace_tree(o.tracer.export()))
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEPTH_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from .render import render_metrics, render_trace_tree
from .runtime import (
    DEFAULT_DUMP_FILENAME,
    DUMP_PATH_ENV,
    NULL_OBSERVER,
    Observer,
    default_dump_path,
    disable,
    enable,
    get_observer,
    load_dump,
    observed,
    save_dump,
    set_observer,
    span,
)
from .trace import Span, Tracer

__all__ = [
    "DEFAULT_DUMP_FILENAME",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEPTH_BUCKETS",
    "DUMP_PATH_ENV",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullRegistry",
    "Observer",
    "Span",
    "Tracer",
    "default_dump_path",
    "disable",
    "enable",
    "get_observer",
    "load_dump",
    "observed",
    "render_metrics",
    "render_trace_tree",
    "save_dump",
    "set_observer",
    "span",
]
