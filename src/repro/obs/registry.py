"""The metrics side of the observability layer: counters, gauges, histograms.

A :class:`MetricsRegistry` is a thread-safe, dependency-free metric store.
Metric names follow the repo-wide convention ``repro_<layer>_<name>_<unit>``
(``repro_exec_task_latency_s``, ``repro_mining_prune_upper_total``); the
optional ``label`` gives one dimension of cardinality (an endpoint, a task
name) without a full label-set model.

Histograms use **fixed buckets** declared at observation time: ``counts[i]``
is the number of observations that fell into bin ``i`` (bounded above by
``buckets[i]``), and the final bin is the overflow.  Bin counts are plain
(not cumulative), which keeps the JSON payload directly plottable.

The registry is process-global by default (see :mod:`repro.obs.runtime`) but
every consumer takes it through the active :class:`~repro.obs.runtime.Observer`,
so tests can inject a fresh — or sentinel — instance.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEPTH_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
]

#: Default histogram buckets for latency metrics, in seconds (upper bounds;
#: observations above the last bound land in the overflow bin).
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for small structural quantities (recursion depth, pattern length).
DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16)


class _Histogram:
    """One fixed-bucket histogram series (a single (name, label) pair)."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 = overflow bin
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min, 9) if self.count else None,
            "max": round(self.max, 9) if self.count else None,
        }


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and fixed-bucket histograms.

    All mutators take a metric ``name`` plus an optional ``label`` (one
    cardinality dimension; ``""`` means unlabeled).  ``snapshot()`` returns
    the whole registry as plain JSON-ready dicts — the payload served by
    ``GET /metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, float]] = {}
        self._gauges: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, _Histogram]] = {}

    # ------------------------------------------------------------ mutators

    def inc(self, name: str, value: float = 1, label: str = "") -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[label] = series.get(label, 0) + value

    def set_gauge(self, name: str, value: float, label: str = "") -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges.setdefault(name, {})[label] = value

    def observe(
        self,
        name: str,
        value: float,
        label: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        """Record ``value`` into the histogram ``name``.

        ``buckets`` fixes the bin bounds on first observation; later
        observations of the same series reuse the established bounds.
        """
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(label)
            if histogram is None:
                histogram = series[label] = _Histogram(tuple(buckets))
            histogram.observe(value)

    def reset(self) -> None:
        """Drop every recorded metric (tests and long-lived servers)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------- readers

    def counter(self, name: str, label: str = "") -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(label, 0)

    def gauge(self, name: str, label: str = "") -> float:
        """Current value of a gauge (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, {}).get(label, 0)

    def histogram(self, name: str, label: str = "") -> Dict:
        """One histogram series as a dict (empty dict if never observed)."""
        with self._lock:
            series = self._histograms.get(name, {}).get(label)
            return series.to_dict() if series is not None else {}

    def labels_of(self, name: str) -> List[str]:
        """Every label recorded under a histogram name, sorted."""
        with self._lock:
            return sorted(self._histograms.get(name, {}))

    def snapshot(self) -> Dict:
        """The full registry as JSON-ready nested dicts.

        Schema: ``{"counters": {name: {label: value}}, "gauges": {...},
        "histograms": {name: {label: {"buckets", "counts", "count", "sum",
        "min", "max"}}}}`` — the unlabeled series uses the ``""`` key.
        """
        with self._lock:
            return {
                "counters": {
                    name: dict(series) for name, series in self._counters.items()
                },
                "gauges": {
                    name: dict(series) for name, series in self._gauges.items()
                },
                "histograms": {
                    name: {
                        label: histogram.to_dict()
                        for label, histogram in series.items()
                    }
                    for name, series in self._histograms.items()
                },
            }


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the disabled-path backend.

    Every mutator is a no-op, so instrumented code can call it freely with
    zero allocation; ``snapshot()`` is always empty.
    """

    def inc(self, name: str, value: float = 1, label: str = "") -> None:
        pass

    def set_gauge(self, name: str, value: float, label: str = "") -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        label: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        pass
